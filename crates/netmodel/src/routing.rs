//! MPLS networks: topology + label table + routing table `τ`
//! (Definition 2).
//!
//! The routing table maps `(incoming link, top label)` to a
//! priority-ordered sequence of *traffic-engineering groups*. Each group
//! is a set of `(outgoing link, operation sequence)` pairs; a router
//! nondeterministically forwards over any *active* link of the
//! highest-priority group that has one (Section 2.4). Lower group index
//! means higher priority, matching `O₁ O₂ … Oₙ` in the paper.

use crate::label::{LabelId, LabelTable};
use crate::topology::{LinkId, Topology};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A single MPLS stack operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Replace the top label.
    Swap(LabelId),
    /// Push a new top label.
    Push(LabelId),
    /// Remove the top label.
    Pop,
}

/// Sequences of up to this many operations are stored inline in the
/// [`RoutingEntry`] itself, with no heap allocation at all.
pub const OPSEQ_INLINE: usize = 3;

#[derive(Clone)]
enum OpSeqRepr {
    /// The common case: MPLS dataplanes overwhelmingly use 0–2
    /// operations per rule (swap, pop, swap+push for protection), so
    /// they fit in the entry without touching the allocator.
    Inline { len: u8, ops: [Op; OPSEQ_INLINE] },
    /// Longer sequences spill to a shared, immutable allocation.
    /// [`Network`] interns these so identical sequences across a
    /// million-rule table share one block.
    Heap(Arc<[Op]>),
}

/// A compact, immutable-by-default operation sequence.
///
/// Behaves like `&[Op]` (it derefs to a slice and iterates), compares
/// and hashes by content regardless of representation, and clones in
/// O(1) for heap-resident sequences (an `Arc` bump). Build one with
/// `vec![…].into()`, `.collect()`, or [`OpSeq::new`] + [`OpSeq::push`].
#[derive(Clone)]
pub struct OpSeq(OpSeqRepr);

impl OpSeq {
    /// The empty sequence (no allocation).
    pub const fn new() -> Self {
        OpSeq(OpSeqRepr::Inline {
            len: 0,
            ops: [Op::Pop; OPSEQ_INLINE],
        })
    }

    /// The operations as a slice.
    pub fn as_slice(&self) -> &[Op] {
        match &self.0 {
            OpSeqRepr::Inline { len, ops } => &ops[..*len as usize],
            OpSeqRepr::Heap(arc) => arc,
        }
    }

    /// Append one operation, spilling from the inline representation to
    /// a fresh heap block when it grows past [`OPSEQ_INLINE`]. A spilled
    /// (or shared) sequence is copied first, so pushing never mutates
    /// other clones.
    pub fn push(&mut self, op: Op) {
        match &mut self.0 {
            OpSeqRepr::Inline { len, ops } if (*len as usize) < OPSEQ_INLINE => {
                ops[*len as usize] = op;
                *len += 1;
            }
            _ => {
                let mut v = self.as_slice().to_vec();
                v.push(op);
                self.0 = OpSeqRepr::Heap(v.into());
            }
        }
    }

    /// Whether the sequence lives in a shared heap block, and if so its
    /// allocation identity and length — used to count shared blocks
    /// once in [`Network::bytes_resident`].
    fn heap_block(&self) -> Option<(*const Op, usize)> {
        match &self.0 {
            OpSeqRepr::Inline { .. } => None,
            OpSeqRepr::Heap(arc) => Some((arc.as_ptr(), arc.len())),
        }
    }

    /// Replace a heap-resident sequence with the pooled copy of the
    /// same content (inserting it if new), so duplicates share one
    /// allocation. Inline sequences are already allocation-free.
    fn intern(&mut self, pool: &mut HashSet<Arc<[Op]>>) {
        if let OpSeqRepr::Heap(arc) = &mut self.0 {
            match pool.get(&arc[..]) {
                Some(existing) => *arc = Arc::clone(existing),
                None => {
                    pool.insert(Arc::clone(arc));
                }
            }
        }
    }
}

impl Default for OpSeq {
    fn default() -> Self {
        OpSeq::new()
    }
}

impl std::ops::Deref for OpSeq {
    type Target = [Op];
    fn deref(&self) -> &[Op] {
        self.as_slice()
    }
}

impl PartialEq for OpSeq {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OpSeq {}

impl std::hash::Hash for OpSeq {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for OpSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl From<Vec<Op>> for OpSeq {
    fn from(v: Vec<Op>) -> Self {
        OpSeq::from(v.as_slice())
    }
}

impl From<&[Op]> for OpSeq {
    fn from(s: &[Op]) -> Self {
        if s.len() <= OPSEQ_INLINE {
            let mut ops = [Op::Pop; OPSEQ_INLINE];
            ops[..s.len()].copy_from_slice(s);
            OpSeq(OpSeqRepr::Inline {
                len: s.len() as u8,
                ops,
            })
        } else {
            OpSeq(OpSeqRepr::Heap(s.into()))
        }
    }
}

impl<const N: usize> From<[Op; N]> for OpSeq {
    fn from(a: [Op; N]) -> Self {
        OpSeq::from(a.as_slice())
    }
}

impl FromIterator<Op> for OpSeq {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        iter.into_iter().collect::<Vec<_>>().into()
    }
}

impl<'a> IntoIterator for &'a OpSeq {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One forwarding alternative: send over `out` applying `ops`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoutingEntry {
    /// Outgoing link (must leave the router the incoming link enters).
    pub out: LinkId,
    /// Header operations applied while forwarding.
    pub ops: OpSeq,
}

impl RoutingEntry {
    /// Convenience constructor accepting anything convertible to an
    /// [`OpSeq`] (a `Vec<Op>`, a slice, an array).
    pub fn new(out: LinkId, ops: impl Into<OpSeq>) -> Self {
        RoutingEntry {
            out,
            ops: ops.into(),
        }
    }
}

/// A traffic-engineering group: a set of equally preferred alternatives.
pub type TeGroup = Vec<RoutingEntry>;

/// How serious a [`ValidationIssue`] is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Benign inconsistency the engines tolerate (e.g. an empty
    /// priority group shadowed by a later one).
    Warning,
    /// A well-formedness violation that can make verification results
    /// meaningless or crash the engine (dangling links, unknown labels).
    Error,
}

/// The category of a [`ValidationIssue`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum IssueKind {
    /// A rule is keyed on, or an operation references, a label id that
    /// is not interned in the network's label table.
    UnknownLabel,
    /// A rule references a link id outside the topology.
    LinkOutOfRange,
    /// A forwarding entry's outgoing link does not leave the router the
    /// incoming link enters (Definition 2's `t(e) = s(e_j)`).
    NonAdjacentRule,
    /// An empty priority group shadowed by a non-empty lower-priority
    /// one (harmless, but usually a sign of a truncated table).
    EmptyGroup,
}

impl IssueKind {
    /// A stable lower-case identifier (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            IssueKind::UnknownLabel => "unknown-label",
            IssueKind::LinkOutOfRange => "link-out-of-range",
            IssueKind::NonAdjacentRule => "non-adjacent-rule",
            IssueKind::EmptyGroup => "empty-group",
        }
    }
}

/// One problem found by [`Network::validate`]: what is wrong
/// (`kind`), how bad it is (`severity`), and where (`location`, a
/// human-readable rendering of the offending rule).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidationIssue {
    /// How serious the issue is.
    pub severity: Severity,
    /// The category of the issue.
    pub kind: IssueKind,
    /// Where the issue was found (rule key, link, label …).
    pub location: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}]: {}", self.kind.as_str(), self.location)
    }
}

/// What [`Network::repair`] changed, for telemetry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RepairReport {
    /// `(link, label)` keys dropped entirely (unknown label,
    /// out-of-range incoming link, or no surviving entries).
    pub dropped_keys: usize,
    /// Individual forwarding entries dropped (dangling or non-adjacent
    /// outgoing link, ops referencing unknown labels).
    pub dropped_entries: usize,
    /// Empty priority groups removed (priorities clamped down).
    pub removed_groups: usize,
}

impl RepairReport {
    /// Whether the repair pass changed nothing.
    pub fn is_clean(&self) -> bool {
        self.dropped_keys == 0 && self.dropped_entries == 0 && self.removed_groups == 0
    }
}

/// An MPLS network: topology, labels, and the routing function `τ`.
#[derive(Clone, Debug, Default)]
pub struct Network {
    /// The underlying multigraph.
    pub topology: Topology,
    /// The label universe.
    pub labels: LabelTable,
    table: HashMap<(LinkId, LabelId), Vec<TeGroup>>,
    /// Interning pool for heap-resident op sequences: every sequence
    /// longer than [`OPSEQ_INLINE`] inserted through the `add_rule`
    /// family is deduplicated here so a million-rule table with a few
    /// thousand distinct tunnel programs allocates each once. Entries
    /// removed from the table may linger in the pool (one small block
    /// each) until the network is dropped; that slack is invisible to
    /// equality and accounted for by [`Network::bytes_resident`] only
    /// while still referenced from the table.
    ops_pool: HashSet<Arc<[Op]>>,
}

impl Network {
    /// A network over the given topology and labels, with an empty
    /// routing table.
    pub fn new(topology: Topology, labels: LabelTable) -> Self {
        Network {
            topology,
            labels,
            table: HashMap::new(),
            ops_pool: HashSet::new(),
        }
    }

    /// Insert an entry at `priority`, interning any heap-resident op
    /// sequence through the pool first. All `add_rule` variants funnel
    /// through here.
    fn insert_entry(
        &mut self,
        in_link: LinkId,
        label: LabelId,
        priority: usize,
        mut entry: RoutingEntry,
    ) {
        entry.ops.intern(&mut self.ops_pool);
        let groups = self.table.entry((in_link, label)).or_default();
        if groups.len() < priority {
            groups.resize(priority, TeGroup::new());
        }
        groups[priority - 1].push(entry);
    }

    /// Add a forwarding rule: packets arriving on `in_link` with top
    /// label `label` may be forwarded over `entry.out` applying
    /// `entry.ops`, at the given `priority` (1 = highest, matching the
    /// paper's tables).
    ///
    /// # Panics
    /// If `entry.out` does not leave the router that `in_link` enters
    /// (the well-formedness condition `t(e) = s(e_j)` of Definition 2).
    pub fn add_rule(
        &mut self,
        in_link: LinkId,
        label: LabelId,
        priority: usize,
        entry: RoutingEntry,
    ) {
        assert!(priority >= 1, "priorities are 1-based");
        assert_eq!(
            self.topology.dst(in_link),
            self.topology.src(entry.out),
            "outgoing link must leave the router the incoming link enters"
        );
        self.insert_entry(in_link, label, priority, entry);
    }

    /// Fallible variant of [`Network::add_rule`]: returns a typed
    /// [`ValidationIssue`] instead of panicking when the rule is
    /// ill-formed (bad priority, out-of-range links, non-adjacent
    /// outgoing link, or unknown labels).
    pub fn try_add_rule(
        &mut self,
        in_link: LinkId,
        label: LabelId,
        priority: usize,
        entry: RoutingEntry,
    ) -> Result<(), ValidationIssue> {
        let issue = |kind, location: String| ValidationIssue {
            severity: Severity::Error,
            kind,
            location,
        };
        if priority == 0 {
            return Err(issue(
                IssueKind::EmptyGroup,
                "priorities are 1-based; got 0".to_string(),
            ));
        }
        if in_link.index() >= self.topology.num_links() as usize {
            return Err(issue(
                IssueKind::LinkOutOfRange,
                format!("incoming link id {} out of range", in_link.index()),
            ));
        }
        if entry.out.index() >= self.topology.num_links() as usize {
            return Err(issue(
                IssueKind::LinkOutOfRange,
                format!("outgoing link id {} out of range", entry.out.index()),
            ));
        }
        if label.index() >= self.labels.len() {
            return Err(issue(
                IssueKind::UnknownLabel,
                format!("rule keyed on unknown label id {}", label.index()),
            ));
        }
        for op in &entry.ops {
            if let Op::Swap(l) | Op::Push(l) = op {
                if l.index() >= self.labels.len() {
                    return Err(issue(
                        IssueKind::UnknownLabel,
                        format!("operation references unknown label id {}", l.index()),
                    ));
                }
            }
        }
        if self.topology.dst(in_link) != self.topology.src(entry.out) {
            return Err(issue(
                IssueKind::NonAdjacentRule,
                format!(
                    "rule forwards from {} over non-adjacent {}",
                    self.topology.link_name(in_link),
                    self.topology.link_name(entry.out),
                ),
            ));
        }
        self.add_rule(in_link, label, priority, entry);
        Ok(())
    }

    /// Insert a rule **without any well-formedness checks**.
    ///
    /// This exists for fault injection (the chaos harness deliberately
    /// creates corrupt tables that [`Network::validate`] and
    /// [`Network::repair`] must catch) and for format loaders that
    /// validate in bulk afterwards. Regular construction should use
    /// [`Network::add_rule`] or [`Network::try_add_rule`].
    pub fn add_rule_unchecked(
        &mut self,
        in_link: LinkId,
        label: LabelId,
        priority: usize,
        entry: RoutingEntry,
    ) {
        let priority = priority.max(1);
        self.insert_entry(in_link, label, priority, entry);
    }

    /// Remove one forwarding entry equal to `entry` from the group at
    /// `priority` of key `(in_link, label)`. Returns whether an entry was
    /// removed. Trailing empty groups are pruned and a key left without
    /// any entries is dropped, so removal keeps the table in the same
    /// canonical shape [`Network::repair`] produces.
    pub fn remove_entry(
        &mut self,
        in_link: LinkId,
        label: LabelId,
        priority: usize,
        entry: &RoutingEntry,
    ) -> bool {
        let Some(groups) = self.table.get_mut(&(in_link, label)) else {
            return false;
        };
        let Some(group) = priority.checked_sub(1).and_then(|i| groups.get_mut(i)) else {
            return false;
        };
        let Some(pos) = group.iter().position(|e| e == entry) else {
            return false;
        };
        group.remove(pos);
        while groups.last().is_some_and(Vec::is_empty) {
            groups.pop();
        }
        if groups.iter().all(Vec::is_empty) {
            self.table.remove(&(in_link, label));
        }
        true
    }

    /// Move the whole traffic-engineering group of key `(in_link,
    /// label)` from priority `from` to priority `to`, merging with any
    /// entries already at `to`. Returns whether anything moved. This is
    /// the "priority change" dataplane delta: re-ranking a failover
    /// alternative without touching its entries.
    pub fn move_group(&mut self, in_link: LinkId, label: LabelId, from: usize, to: usize) -> bool {
        if from == 0 || to == 0 || from == to {
            return false;
        }
        let Some(groups) = self.table.get_mut(&(in_link, label)) else {
            return false;
        };
        let Some(src) = from.checked_sub(1).and_then(|i| groups.get_mut(i)) else {
            return false;
        };
        if src.is_empty() {
            return false;
        }
        let moved = std::mem::take(src);
        if groups.len() < to {
            groups.resize(to, TeGroup::new());
        }
        groups[to - 1].extend(moved);
        while groups.last().is_some_and(Vec::is_empty) {
            groups.pop();
        }
        true
    }

    /// All rules forwarding *over* `out`, flattened as
    /// `(in_link, label, priority, entry)` in a deterministic order.
    /// This is the blast radius of a link-down delta: exactly the
    /// entries that stop forwarding when `out` is taken out of service.
    pub fn entries_over(&self, out: LinkId) -> Vec<(LinkId, LabelId, usize, RoutingEntry)> {
        let mut hits = Vec::new();
        for ((in_link, label), groups) in &self.table {
            for (gi, group) in groups.iter().enumerate() {
                for entry in group {
                    if entry.out == out {
                        hits.push((*in_link, *label, gi + 1, entry.clone()));
                    }
                }
            }
        }
        hits.sort_by(|a, b| {
            (a.0.index(), a.1.index(), a.2, a.3.out.index()).cmp(&(
                b.0.index(),
                b.1.index(),
                b.2,
                b.3.out.index(),
            ))
        });
        hits
    }

    /// The full priority-ordered group sequence `τ(e, ℓ)`; empty slice if
    /// no rule exists.
    pub fn groups(&self, in_link: LinkId, label: LabelId) -> &[TeGroup] {
        self.table
            .get(&(in_link, label))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterate over all `(in_link, label)` keys with routing entries.
    pub fn routing_keys(&self) -> impl Iterator<Item = (LinkId, LabelId)> + '_ {
        self.table.keys().copied()
    }

    /// Total number of forwarding rules (entries across all groups), the
    /// measure the paper reports for NORDUnet (>250k).
    pub fn num_rules(&self) -> usize {
        self.table
            .values()
            .map(|gs| gs.iter().map(|g| g.len()).sum::<usize>())
            .sum()
    }

    /// Estimated heap bytes held by the routing table: hash-map
    /// capacity, group/entry vectors, and spilled op sequences (each
    /// shared block counted once, however many entries reference it).
    /// Inline op sequences cost nothing beyond the entry itself, which
    /// is what keeps a million-rule scale-tier load in budget. The
    /// topology and label table are accounted separately by
    /// [`Topology::bytes_resident`] and [`LabelTable::bytes_resident`].
    pub fn bytes_resident(&self) -> usize {
        use std::mem::size_of;
        // Hash-map buckets: key + value + control byte per slot.
        let mut bytes = self.table.capacity()
            * (size_of::<(LinkId, LabelId)>() + size_of::<Vec<TeGroup>>() + 1);
        let mut seen_blocks: HashSet<*const Op> = HashSet::new();
        for groups in self.table.values() {
            bytes += groups.capacity() * size_of::<TeGroup>();
            for group in groups {
                bytes += group.capacity() * size_of::<RoutingEntry>();
                for entry in group {
                    if let Some((ptr, len)) = entry.ops.heap_block() {
                        if seen_blocks.insert(ptr) {
                            // Arc header (strong + weak counts) plus payload.
                            bytes += 2 * size_of::<usize>() + len * size_of::<Op>();
                        }
                    }
                }
            }
        }
        bytes
    }

    /// A printable name for a link id that may be out of range (the
    /// panicking [`Topology::link_name`] must not see corrupt ids).
    fn safe_link_name(&self, link: LinkId) -> String {
        if link.index() < self.topology.num_links() as usize {
            self.topology.link_name(link)
        } else {
            format!("link#{}", link.index())
        }
    }

    /// A printable name for a label id that may be out of range.
    fn safe_label_name(&self, label: LabelId) -> String {
        if label.index() < self.labels.len() {
            self.labels.name(label).to_string()
        } else {
            format!("label#{}", label.index())
        }
    }

    /// Validate internal consistency; returns typed issues.
    ///
    /// `Error`-severity issues (out-of-range links, unknown labels,
    /// non-adjacent rules) can crash or mislead the engines;
    /// `Warning`-severity issues (empty shadowed priority groups) are
    /// tolerated. All index accesses are range-guarded, so this is safe
    /// to call on arbitrarily corrupt tables — e.g. ones produced by
    /// fault injection via [`Network::add_rule_unchecked`].
    pub fn validate(&self) -> Vec<ValidationIssue> {
        let mut problems = Vec::new();
        let mut push = |severity, kind, location: String| {
            problems.push(ValidationIssue {
                severity,
                kind,
                location,
            })
        };
        for ((in_link, label), groups) in &self.table {
            let key_loc = format!(
                "({}, {})",
                self.safe_link_name(*in_link),
                self.safe_label_name(*label)
            );
            if label.index() >= self.labels.len() {
                push(
                    Severity::Error,
                    IssueKind::UnknownLabel,
                    format!("rule {key_loc} keyed on unknown label id {}", label.index()),
                );
            }
            let in_ok = in_link.index() < self.topology.num_links() as usize;
            if !in_ok {
                push(
                    Severity::Error,
                    IssueKind::LinkOutOfRange,
                    format!(
                        "rule {key_loc} keyed on out-of-range link id {}",
                        in_link.index()
                    ),
                );
            }
            for (gi, group) in groups.iter().enumerate() {
                if group.is_empty() && gi + 1 != groups.len() {
                    push(
                        Severity::Warning,
                        IssueKind::EmptyGroup,
                        format!("empty priority group {} for {key_loc}", gi + 1),
                    );
                }
                for entry in group {
                    if entry.out.index() >= self.topology.num_links() as usize {
                        push(
                            Severity::Error,
                            IssueKind::LinkOutOfRange,
                            format!(
                                "rule {key_loc} forwards over out-of-range link id {}",
                                entry.out.index()
                            ),
                        );
                    } else if in_ok && self.topology.dst(*in_link) != self.topology.src(entry.out) {
                        push(
                            Severity::Error,
                            IssueKind::NonAdjacentRule,
                            format!(
                                "rule {key_loc} forwards over non-adjacent {}",
                                self.safe_link_name(entry.out)
                            ),
                        );
                    }
                    for op in &entry.ops {
                        if let Op::Swap(l) | Op::Push(l) = op {
                            if l.index() >= self.labels.len() {
                                push(
                                    Severity::Error,
                                    IssueKind::UnknownLabel,
                                    format!(
                                        "rule {key_loc} operation references unknown label id {}",
                                        l.index()
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
        problems
    }

    /// Opt-in repair: drop everything [`Network::validate`] flags as
    /// `Error` severity and tidy up `Warning`-level noise, leaving a
    /// network on which `validate()` reports no `Error` issues.
    ///
    /// Concretely: keys with an unknown label or out-of-range incoming
    /// link are dropped wholesale; entries with a dangling, non-adjacent
    /// outgoing link or ops referencing unknown labels are dropped;
    /// empty priority groups are removed (clamping lower priorities up);
    /// keys left without any entries are dropped.
    pub fn repair(&mut self) -> RepairReport {
        let mut report = RepairReport::default();
        let num_links = self.topology.num_links() as usize;
        let num_labels = self.labels.len();
        let topo = &self.topology;
        self.table.retain(|(in_link, label), groups| {
            if label.index() >= num_labels || in_link.index() >= num_links {
                report.dropped_keys += 1;
                return false;
            }
            let enters = topo.dst(*in_link);
            for group in groups.iter_mut() {
                let before = group.len();
                group.retain(|entry| {
                    entry.out.index() < num_links
                        && topo.src(entry.out) == enters
                        && entry.ops.iter().all(|op| match op {
                            Op::Swap(l) | Op::Push(l) => l.index() < num_labels,
                            Op::Pop => true,
                        })
                });
                report.dropped_entries += before - group.len();
            }
            let before_groups = groups.len();
            groups.retain(|g| !g.is_empty());
            report.removed_groups += before_groups - groups.len();
            if groups.is_empty() {
                report.dropped_keys += 1;
                return false;
            }
            true
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;

    fn line_topology() -> (Topology, Vec<LinkId>) {
        // v0 -e0-> v1 -e1-> v2, plus v1 -e2-> v2 (parallel)
        let mut t = Topology::new();
        let v0 = t.add_router("v0", None);
        let v1 = t.add_router("v1", None);
        let v2 = t.add_router("v2", None);
        let e0 = t.add_link(v0, "i0", v1, "i1", 1);
        let e1 = t.add_link(v1, "i2", v2, "i3", 1);
        let e2 = t.add_link(v1, "i4", v2, "i5", 1);
        (t, vec![e0, e1, e2])
    }

    #[test]
    fn rules_group_by_priority() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        net.add_rule(
            e[0],
            ip,
            1,
            RoutingEntry {
                out: e[1],
                ops: vec![].into(),
            },
        );
        net.add_rule(
            e[0],
            ip,
            2,
            RoutingEntry {
                out: e[2],
                ops: vec![].into(),
            },
        );
        let groups = net.groups(e[0], ip);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0][0].out, e[1]);
        assert_eq!(groups[1][0].out, e[2]);
        assert_eq!(net.num_rules(), 2);
        assert!(net.validate().is_empty());
    }

    #[test]
    fn same_priority_entries_share_group() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        for out in [e[1], e[2]] {
            net.add_rule(
                e[0],
                ip,
                1,
                RoutingEntry {
                    out,
                    ops: vec![].into(),
                },
            );
        }
        assert_eq!(net.groups(e[0], ip).len(), 1);
        assert_eq!(net.groups(e[0], ip)[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "outgoing link must leave")]
    fn non_adjacent_rule_rejected() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        // e1 enters v2; e0 leaves v0 — not adjacent.
        net.add_rule(
            e[1],
            ip,
            1,
            RoutingEntry {
                out: e[0],
                ops: vec![].into(),
            },
        );
    }

    #[test]
    fn missing_rule_yields_empty_groups() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let net = Network::new(t, labels);
        assert!(net.groups(e[0], ip).is_empty());
    }

    #[test]
    fn try_add_rule_reports_typed_issues() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        // Non-adjacent: e1 enters v2 but e0 leaves v0.
        let err = net
            .try_add_rule(
                e[1],
                ip,
                1,
                RoutingEntry {
                    out: e[0],
                    ops: vec![].into(),
                },
            )
            .unwrap_err();
        assert_eq!(err.kind, IssueKind::NonAdjacentRule);
        assert_eq!(err.severity, Severity::Error);
        // Out-of-range link id.
        let err = net
            .try_add_rule(
                LinkId(99),
                ip,
                1,
                RoutingEntry {
                    out: e[1],
                    ops: vec![].into(),
                },
            )
            .unwrap_err();
        assert_eq!(err.kind, IssueKind::LinkOutOfRange);
        // Unknown label in an op.
        let err = net
            .try_add_rule(
                e[0],
                ip,
                1,
                RoutingEntry {
                    out: e[1],
                    ops: vec![Op::Swap(LabelId(42))].into(),
                },
            )
            .unwrap_err();
        assert_eq!(err.kind, IssueKind::UnknownLabel);
        // A valid rule still goes through.
        assert!(net
            .try_add_rule(
                e[0],
                ip,
                1,
                RoutingEntry {
                    out: e[1],
                    ops: vec![].into(),
                },
            )
            .is_ok());
        assert_eq!(net.num_rules(), 1);
    }

    #[test]
    fn validate_survives_corrupt_tables() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        // Corrupt state only add_rule_unchecked can create.
        net.add_rule_unchecked(
            LinkId(77),
            ip,
            1,
            RoutingEntry {
                out: e[1],
                ops: vec![].into(),
            },
        );
        net.add_rule_unchecked(
            e[0],
            LabelId(99),
            1,
            RoutingEntry {
                out: e[1],
                ops: vec![].into(),
            },
        );
        net.add_rule_unchecked(
            e[0],
            ip,
            2,
            RoutingEntry {
                out: LinkId(88),
                ops: vec![Op::Push(LabelId(55))].into(),
            },
        );
        let issues = net.validate();
        assert!(issues.iter().any(|i| i.kind == IssueKind::LinkOutOfRange));
        assert!(issues.iter().any(|i| i.kind == IssueKind::UnknownLabel));
        assert!(issues.iter().any(|i| i.kind == IssueKind::EmptyGroup));
        assert!(issues.iter().all(|i| !i.location.is_empty()));
        // Display renders severity + kind + location.
        let rendered = issues[0].to_string();
        assert!(rendered.contains('['));
    }

    #[test]
    fn remove_entry_prunes_empty_keys_and_groups() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        let first = RoutingEntry {
            out: e[1],
            ops: vec![].into(),
        };
        let backup = RoutingEntry {
            out: e[2],
            ops: vec![].into(),
        };
        net.add_rule(e[0], ip, 1, first.clone());
        net.add_rule(e[0], ip, 2, backup.clone());
        // Removing a non-existent entry is a no-op.
        assert!(!net.remove_entry(e[0], ip, 1, &backup));
        assert!(!net.remove_entry(e[0], ip, 9, &first));
        assert_eq!(net.num_rules(), 2);
        // Removing the backup prunes its now-empty trailing group.
        assert!(net.remove_entry(e[0], ip, 2, &backup));
        assert_eq!(net.groups(e[0], ip).len(), 1);
        // Removing the last entry drops the key entirely.
        assert!(net.remove_entry(e[0], ip, 1, &first));
        assert!(net.groups(e[0], ip).is_empty());
        assert_eq!(net.routing_keys().count(), 0);
    }

    #[test]
    fn move_group_rebalances_priorities() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        net.add_rule(
            e[0],
            ip,
            1,
            RoutingEntry {
                out: e[1],
                ops: vec![].into(),
            },
        );
        net.add_rule(
            e[0],
            ip,
            2,
            RoutingEntry {
                out: e[2],
                ops: vec![].into(),
            },
        );
        // Promote the backup group to priority 1 (merging).
        assert!(net.move_group(e[0], ip, 2, 1));
        let groups = net.groups(e[0], ip);
        assert_eq!(groups.len(), 1, "emptied trailing group is pruned");
        assert_eq!(groups[0].len(), 2);
        // Degenerate moves are no-ops.
        assert!(!net.move_group(e[0], ip, 1, 1));
        assert!(!net.move_group(e[0], ip, 5, 1));
        assert!(!net.move_group(e[0], ip, 0, 1));
    }

    #[test]
    fn entries_over_reports_link_blast_radius() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        net.add_rule(
            e[0],
            ip,
            1,
            RoutingEntry {
                out: e[1],
                ops: vec![].into(),
            },
        );
        net.add_rule(
            e[0],
            ip,
            2,
            RoutingEntry {
                out: e[2],
                ops: vec![].into(),
            },
        );
        let over = net.entries_over(e[2]);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].0, e[0]);
        assert_eq!(over[0].2, 2);
        assert!(net.entries_over(e[0]).is_empty());
    }

    #[test]
    fn opseq_inline_and_spill() {
        let mut s = OpSeq::new();
        assert!(s.is_empty());
        assert!(s.heap_block().is_none());
        for i in 0..OPSEQ_INLINE {
            s.push(Op::Push(LabelId(i as u32)));
            assert!(s.heap_block().is_none(), "still inline at {}", i + 1);
        }
        s.push(Op::Pop);
        assert!(s.heap_block().is_some(), "spilled past OPSEQ_INLINE");
        assert_eq!(s.len(), OPSEQ_INLINE + 1);
        assert_eq!(s.last(), Some(&Op::Pop));
        // Content equality and hashing are representation-independent.
        let long: Vec<Op> = s.iter().copied().collect();
        let heap: OpSeq = long.clone().into();
        assert_eq!(s, heap);
        let mut set = HashSet::new();
        set.insert(s.clone());
        assert!(set.contains(&heap));
        // Pushing onto a shared heap sequence copies, not mutates.
        let before = heap.clone();
        let mut grown = heap.clone();
        grown.push(Op::Pop);
        assert_eq!(heap, before);
        assert_ne!(grown, before);
        // Round-trips through slices and iterators.
        assert_eq!(OpSeq::from(&long[..]), heap);
        assert_eq!(long.iter().copied().collect::<OpSeq>(), heap);
        assert_eq!(OpSeq::from([Op::Pop]).as_slice(), &[Op::Pop]);
    }

    #[test]
    fn network_interns_spilled_sequences() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let long = vec![Op::Push(ip), Op::Push(ip), Op::Push(ip), Op::Push(ip)];
        let mut net = Network::new(t, labels);
        for out in [e[1], e[2]] {
            net.add_rule(e[0], ip, 1, RoutingEntry::new(out, long.clone()));
        }
        // Both entries share one pooled allocation.
        let blocks: HashSet<_> = net.groups(e[0], ip)[0]
            .iter()
            .map(|entry| entry.ops.heap_block().expect("spilled").0)
            .collect();
        assert_eq!(blocks.len(), 1, "identical long sequences share a block");
        assert_eq!(net.ops_pool.len(), 1);
        // bytes_resident counts the shared block once and is non-trivial.
        let with_pool = net.bytes_resident();
        assert!(with_pool > 0);
        let mut inline_net = net.clone();
        inline_net.add_rule(e[0], ip, 2, RoutingEntry::new(e[1], vec![Op::Pop]));
        assert!(inline_net.bytes_resident() >= with_pool);
    }

    #[test]
    fn repair_removes_all_error_issues() {
        let (t, e) = line_topology();
        let mut labels = LabelTable::new();
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        net.add_rule(
            e[0],
            ip,
            1,
            RoutingEntry {
                out: e[1],
                ops: vec![].into(),
            },
        );
        net.add_rule_unchecked(
            LinkId(77),
            ip,
            1,
            RoutingEntry {
                out: e[1],
                ops: vec![].into(),
            },
        );
        net.add_rule_unchecked(
            e[0],
            ip,
            3,
            RoutingEntry {
                out: LinkId(88),
                ops: vec![].into(),
            },
        );
        let report = net.repair();
        assert!(!report.is_clean());
        assert_eq!(report.dropped_keys, 1);
        assert_eq!(report.dropped_entries, 1);
        assert!(report.removed_groups >= 1);
        assert!(net.validate().iter().all(|i| i.severity != Severity::Error));
        // The valid rule survived.
        assert_eq!(net.num_rules(), 1);
        assert_eq!(net.groups(e[0], ip)[0][0].out, e[1]);
        // A second repair is a no-op.
        assert!(net.repair().is_clean());
    }
}
