//! Valid MPLS headers and the header-rewrite function `H` (Definitions
//! 2–3).
//!
//! A valid header is either a bare IP label, or an arbitrary tower of
//! plain MPLS labels on top of exactly one bottom-of-stack label on top
//! of an IP label:
//!
//! ```text
//! H = L_IP ∪ { α ℓ₁ ℓ₀ | α ∈ L_M*, ℓ₁ ∈ L_M⊥, ℓ₀ ∈ L_IP }
//! ```
//!
//! [`Header::apply`] implements the partial rewrite function `H(h, ω)`:
//! it returns `None` exactly where the paper's function is undefined
//! (swapping/pushing to an invalid header, or popping an IP label).

use crate::label::{LabelId, LabelKind, LabelTable};
use crate::routing::Op;

/// An MPLS packet header: a label stack with the **top label first**.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Header(pub Vec<LabelId>);

impl Header {
    /// A header consisting of a single label (normally an IP label).
    pub fn single(l: LabelId) -> Self {
        Header(vec![l])
    }

    /// Construct from top-first labels.
    pub fn from_top_first(labels: Vec<LabelId>) -> Self {
        Header(labels)
    }

    /// The top (left-most) label, `head(h)`.
    pub fn top(&self) -> Option<LabelId> {
        self.0.first().copied()
    }

    /// Header height `|h|`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the header has no labels (never valid, but representable
    /// mid-rewrite).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the header is *valid*, i.e. a member of `H`.
    pub fn is_valid(&self, labels: &LabelTable) -> bool {
        match self.0.len() {
            0 => false,
            1 => labels.kind(self.0[0]) == LabelKind::Ip,
            n => {
                labels.kind(self.0[n - 1]) == LabelKind::Ip
                    && labels.kind(self.0[n - 2]) == LabelKind::MplsBos
                    && self.0[..n - 2]
                        .iter()
                        .all(|&l| labels.kind(l) == LabelKind::Mpls)
            }
        }
    }

    /// Apply a sequence of MPLS operations; `None` where `H` is
    /// undefined. The input header must itself be valid.
    pub fn apply(&self, ops: &[Op], labels: &LabelTable) -> Option<Header> {
        debug_assert!(self.is_valid(labels), "rewriting an invalid header");
        let mut cur = self.clone();
        for op in ops {
            match *op {
                Op::Swap(l) => {
                    if cur.is_empty() {
                        return None;
                    }
                    cur.0[0] = l;
                    if !cur.is_valid(labels) {
                        return None;
                    }
                }
                Op::Push(l) => {
                    cur.0.insert(0, l);
                    if !cur.is_valid(labels) {
                        return None;
                    }
                }
                Op::Pop => {
                    let top = cur.top()?;
                    if labels.kind(top) == LabelKind::Ip {
                        return None;
                    }
                    cur.0.remove(0);
                    if !cur.is_valid(labels) {
                        return None;
                    }
                }
            }
        }
        Some(cur)
    }

    /// Render the header as `l1 ∘ l2 ∘ …` (top first), matching the
    /// paper's trace notation.
    pub fn display(&self, labels: &LabelTable) -> String {
        self.0
            .iter()
            .map(|&l| labels.name(l).to_string())
            .collect::<Vec<_>>()
            .join(" ∘ ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        labels: LabelTable,
        m30: LabelId,
        m31: LabelId,
        s20: LabelId,
        s21: LabelId,
        ip1: LabelId,
    }

    fn fixture() -> Fixture {
        let mut labels = LabelTable::new();
        let m30 = labels.mpls("30");
        let m31 = labels.mpls("31");
        let s20 = labels.mpls_bos("s20");
        let s21 = labels.mpls_bos("s21");
        let ip1 = labels.ip("ip1");
        Fixture {
            labels,
            m30,
            m31,
            s20,
            s21,
            ip1,
        }
    }

    #[test]
    fn validity_of_forms() {
        let f = fixture();
        assert!(Header(vec![f.ip1]).is_valid(&f.labels));
        assert!(Header(vec![f.s20, f.ip1]).is_valid(&f.labels));
        assert!(Header(vec![f.m30, f.s20, f.ip1]).is_valid(&f.labels));
        assert!(Header(vec![f.m30, f.m31, f.s20, f.ip1]).is_valid(&f.labels));
        // Invalid: missing BOS, doubled BOS, bare MPLS, empty.
        assert!(!Header(vec![f.m30, f.ip1]).is_valid(&f.labels));
        assert!(!Header(vec![f.s20, f.s21, f.ip1]).is_valid(&f.labels));
        assert!(!Header(vec![f.m30]).is_valid(&f.labels));
        assert!(!Header(vec![]).is_valid(&f.labels));
        assert!(!Header(vec![f.ip1, f.ip1]).is_valid(&f.labels));
    }

    #[test]
    fn paper_example_rewrite() {
        // H(30 ∘ s20 ∘ ip1, pop ∘ swap(s21) ∘ push(31)) = 31 ∘ s21 ∘ ip1
        let f = fixture();
        let h = Header(vec![f.m30, f.s20, f.ip1]);
        let out = h
            .apply(&[Op::Pop, Op::Swap(f.s21), Op::Push(f.m31)], &f.labels)
            .expect("defined");
        assert_eq!(out, Header(vec![f.m31, f.s21, f.ip1]));
    }

    #[test]
    fn pop_of_ip_is_undefined() {
        let f = fixture();
        let h = Header(vec![f.ip1]);
        assert_eq!(h.apply(&[Op::Pop], &f.labels), None);
    }

    #[test]
    fn push_plain_onto_ip_is_undefined() {
        // pushing a plain MPLS label directly on IP skips the BOS label.
        let f = fixture();
        let h = Header(vec![f.ip1]);
        assert_eq!(h.apply(&[Op::Push(f.m30)], &f.labels), None);
        // but pushing a BOS label is fine:
        assert_eq!(
            h.apply(&[Op::Push(f.s20)], &f.labels),
            Some(Header(vec![f.s20, f.ip1]))
        );
    }

    #[test]
    fn swap_must_preserve_position_kind() {
        let f = fixture();
        let h = Header(vec![f.s20, f.ip1]);
        // swapping BOS to BOS: ok
        assert!(h.apply(&[Op::Swap(f.s21)], &f.labels).is_some());
        // swapping BOS to plain MPLS: invalid header
        assert!(h.apply(&[Op::Swap(f.m30)], &f.labels).is_none());
        // swapping the lone IP label to another IP label: ok
        let ip_only = Header(vec![f.ip1]);
        assert!(ip_only.apply(&[Op::Swap(f.ip1)], &f.labels).is_some());
    }

    #[test]
    fn empty_op_sequence_is_identity() {
        let f = fixture();
        let h = Header(vec![f.s20, f.ip1]);
        assert_eq!(h.apply(&[], &f.labels), Some(h.clone()));
    }

    #[test]
    fn tunnels_grow_by_push() {
        let f = fixture();
        let h = Header(vec![f.s20, f.ip1]);
        let out = h.apply(&[Op::Push(f.m30)], &f.labels).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.top(), Some(f.m30));
    }
}
