//! Network topologies: directed multigraphs of routers and links
//! (Definition 1), with named interfaces and optional geographic
//! coordinates.
//!
//! Links are directed; a physical cable between routers `u` and `v` is
//! modelled as two links (one per direction), which is what enables the
//! paper's *asymmetric* link-failure model. Every link knows the
//! interface names on both ends (used by the query syntax
//! `[v.out#u.in]`) and carries a distance value for the `Distance`
//! atomic quantity (geographic distance, latency, inverse bandwidth, …).

use std::collections::HashMap;

/// A router of the topology (a dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouterId(pub u32);

impl RouterId {
    /// The dense index of this router.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed link of the topology (a dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The dense index of this link.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A router record.
#[derive(Clone, Debug)]
pub struct Router {
    /// Human-readable router name (unique).
    pub name: String,
    /// Latitude/longitude, if known (drives GUI layout and geographic
    /// distance in the original tool).
    pub coord: Option<(f64, f64)>,
}

/// A directed link record.
#[derive(Clone, Debug)]
pub struct Link {
    /// Source router.
    pub src: RouterId,
    /// Target router.
    pub dst: RouterId,
    /// Interface name on the source router (outgoing side).
    pub src_if: String,
    /// Interface name on the target router (incoming side).
    pub dst_if: String,
    /// Distance value for the `Distance` quantity.
    pub distance: u64,
}

/// A directed multigraph of routers and links.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    routers: Vec<Router>,
    links: Vec<Link>,
    by_name: HashMap<String, RouterId>,
    out: Vec<Vec<LinkId>>,
    into: Vec<Vec<LinkId>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a router; names must be unique.
    pub fn add_router(&mut self, name: &str, coord: Option<(f64, f64)>) -> RouterId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate router name {name:?}"
        );
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router {
            name: name.to_string(),
            coord,
        });
        self.by_name.insert(name.to_string(), id);
        self.out.push(Vec::new());
        self.into.push(Vec::new());
        id
    }

    /// Add a directed link and return its id.
    pub fn add_link(
        &mut self,
        src: RouterId,
        src_if: &str,
        dst: RouterId,
        dst_if: &str,
        distance: u64,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src,
            dst,
            src_if: src_if.to_string(),
            dst_if: dst_if.to_string(),
            distance,
        });
        self.out[src.index()].push(id);
        self.into[dst.index()].push(id);
        id
    }

    /// Number of routers.
    pub fn num_routers(&self) -> u32 {
        self.routers.len() as u32
    }

    /// Number of directed links.
    pub fn num_links(&self) -> u32 {
        self.links.len() as u32
    }

    /// Estimated heap bytes held by the topology: router and link
    /// records (including their name strings), the name index, and the
    /// adjacency lists.
    pub fn bytes_resident(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.routers.capacity() * size_of::<Router>()
            + self.links.capacity() * size_of::<Link>()
            + self.by_name.capacity() * (size_of::<String>() + size_of::<RouterId>() + 1)
            + self.out.capacity() * size_of::<Vec<LinkId>>()
            + self.into.capacity() * size_of::<Vec<LinkId>>();
        for r in &self.routers {
            bytes += r.name.capacity();
        }
        for l in &self.links {
            bytes += l.src_if.capacity() + l.dst_if.capacity();
        }
        for name in self.by_name.keys() {
            bytes += name.capacity();
        }
        for adj in self.out.iter().chain(self.into.iter()) {
            bytes += adj.capacity() * size_of::<LinkId>();
        }
        bytes
    }

    /// The router record.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// The link record.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Source router of a link (`s(e)`).
    pub fn src(&self, id: LinkId) -> RouterId {
        self.links[id.index()].src
    }

    /// Target router of a link (`t(e)`).
    pub fn dst(&self, id: LinkId) -> RouterId {
        self.links[id.index()].dst
    }

    /// Look up a router by name.
    pub fn router_by_name(&self, name: &str) -> Option<RouterId> {
        self.by_name.get(name).copied()
    }

    /// Links leaving `r`.
    pub fn links_from(&self, r: RouterId) -> &[LinkId] {
        &self.out[r.index()]
    }

    /// Links entering `r`.
    pub fn links_into(&self, r: RouterId) -> &[LinkId] {
        &self.into[r.index()]
    }

    /// All links, as ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(|i| LinkId(i as u32))
    }

    /// All routers, as ids.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.routers.len()).map(|i| RouterId(i as u32))
    }

    /// Set (or replace) a router's coordinates.
    pub fn set_coord(&mut self, r: RouterId, coord: (f64, f64)) {
        self.routers[r.index()].coord = Some(coord);
    }

    /// The link from `src` whose outgoing interface is `src_if`, if any.
    pub fn link_by_interface(&self, src: RouterId, src_if: &str) -> Option<LinkId> {
        self.out[src.index()]
            .iter()
            .copied()
            .find(|&l| self.links[l.index()].src_if == src_if)
    }

    /// A human-readable rendering `src.if -> dst.if` of a link.
    pub fn link_name(&self, id: LinkId) -> String {
        let l = &self.links[id.index()];
        format!(
            "{}.{}->{}.{}",
            self.routers[l.src.index()].name,
            l.src_if,
            self.routers[l.dst.index()].name,
            l.dst_if
        )
    }

    /// Whether a link is a self-loop (used by the `Hops` quantity, which
    /// skips them).
    pub fn is_self_loop(&self, id: LinkId) -> bool {
        let l = &self.links[id.index()];
        l.src == l.dst
    }

    /// Great-circle-ish distance between two routers with coordinates,
    /// in kilometres (haversine). Returns `None` if either router lacks
    /// coordinates.
    pub fn geo_distance(&self, a: RouterId, b: RouterId) -> Option<f64> {
        let (la, lo) = self.routers[a.index()].coord?;
        let (lb, lob) = self.routers[b.index()].coord?;
        let (la, lo, lb, lob) = (
            la.to_radians(),
            lo.to_radians(),
            lb.to_radians(),
            lob.to_radians(),
        );
        let dlat = lb - la;
        let dlon = lob - lo;
        let h = (dlat / 2.0).sin().powi(2) + la.cos() * lb.cos() * (dlon / 2.0).sin().powi(2);
        Some(2.0 * 6371.0 * h.sqrt().asin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_router_topo() -> (Topology, RouterId, RouterId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_router("A", Some((57.0, 9.9)));
        let b = t.add_router("B", Some((55.7, 12.6)));
        let l = t.add_link(a, "eth0", b, "eth1", 10);
        (t, a, b, l)
    }

    #[test]
    fn links_index_both_directions() {
        let (t, a, b, l) = two_router_topo();
        assert_eq!(t.links_from(a), &[l]);
        assert_eq!(t.links_into(b), &[l]);
        assert!(t.links_from(b).is_empty());
        assert_eq!(t.src(l), a);
        assert_eq!(t.dst(l), b);
    }

    #[test]
    fn router_lookup_by_name() {
        let (t, a, _, _) = two_router_topo();
        assert_eq!(t.router_by_name("A"), Some(a));
        assert_eq!(t.router_by_name("Z"), None);
    }

    #[test]
    fn interface_lookup() {
        let (t, a, _, l) = two_router_topo();
        assert_eq!(t.link_by_interface(a, "eth0"), Some(l));
        assert_eq!(t.link_by_interface(a, "eth9"), None);
    }

    #[test]
    fn multigraph_allows_parallel_links() {
        let (mut t, a, b, l1) = two_router_topo();
        let l2 = t.add_link(a, "eth2", b, "eth3", 5);
        assert_ne!(l1, l2);
        assert_eq!(t.links_from(a).len(), 2);
    }

    #[test]
    fn self_loop_detection() {
        let (mut t, a, _, l) = two_router_topo();
        let loopy = t.add_link(a, "lo0", a, "lo1", 0);
        assert!(t.is_self_loop(loopy));
        assert!(!t.is_self_loop(l));
    }

    #[test]
    fn geo_distance_plausible() {
        let (t, a, b, _) = two_router_topo();
        // Aalborg to Copenhagen is roughly 180-240 km.
        let d = t.geo_distance(a, b).unwrap();
        assert!(d > 100.0 && d < 400.0, "distance {d} out of range");
    }

    #[test]
    #[should_panic(expected = "duplicate router name")]
    fn duplicate_router_rejected() {
        let mut t = Topology::new();
        t.add_router("A", None);
        t.add_router("A", None);
    }
}
