//! Network traces (Definition 4) and the atomic quantities of Section 3.
//!
//! A trace is a finite sequence of `(link, header)` pairs describing one
//! possible routing of a packet; validity is relative to a set `F` of
//! failed links. The atomic quantities `Links`, `Hops`, `Distance`,
//! `Failures`, and `Tunnels` evaluate a trace to a natural number; the
//! AalWiNes weight compiler turns linear combinations of them into
//! semiring weights on PDS rules, and this module is the ground truth
//! those weights are validated against.

use crate::header::Header;
use crate::routing::Network;
use crate::sim::active_group_index;
use crate::topology::LinkId;
use std::collections::HashSet;

/// One step of a trace: the packet traverses `link` carrying `header`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// The link traversed.
    pub link: LinkId,
    /// The header *while on that link* (after the previous router's
    /// rewrite).
    pub header: Header,
}

/// A network trace `(e₁,h₁)(e₂,h₂)…(eₙ,hₙ)`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    /// The steps, in order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Build a trace from `(link, header)` pairs.
    pub fn new(steps: Vec<TraceStep>) -> Self {
        Trace { steps }
    }

    /// `Links(σ) = n`: the length of the trace.
    pub fn links(&self) -> u64 {
        self.steps.len() as u64
    }

    /// `Hops(σ)`: distinct non-self-loop links traversed.
    pub fn hops(&self, net: &Network) -> u64 {
        let distinct: HashSet<LinkId> = self
            .steps
            .iter()
            .map(|s| s.link)
            .filter(|&l| !net.topology.is_self_loop(l))
            .collect();
        distinct.len() as u64
    }

    /// `Distance(σ) = Σ d(eᵢ)` for the topology's distance function.
    pub fn distance(&self, net: &Network) -> u64 {
        self.steps
            .iter()
            .map(|s| net.topology.link(s.link).distance)
            .sum()
    }

    /// `Failures(σ)`: at every step, the number of links in traffic
    /// engineering groups of strictly higher priority than the group
    /// actually used — the links that must have failed locally to make
    /// the step possible (summed over steps, so a link failing may be
    /// counted more than once, exactly as in the paper).
    ///
    /// `F` must be a failure set under which the trace is valid; the
    /// group actually used at each step is the highest-priority active
    /// one.
    pub fn failures(&self, net: &Network, failed: &HashSet<LinkId>) -> Option<u64> {
        let mut total = 0u64;
        for w in self.steps.windows(2) {
            let (cur, _next) = (&w[0], &w[1]);
            let top = cur.header.top()?;
            let groups = net.groups(cur.link, top);
            let j = active_group_index(groups, failed)?;
            let mut blocked: HashSet<LinkId> = HashSet::new();
            for g in &groups[..j] {
                for entry in g {
                    blocked.insert(entry.out);
                }
            }
            total += blocked.len() as u64;
        }
        Some(total)
    }

    /// `Tunnels(σ) = Σ max(0, |hᵢ₊₁| − |hᵢ|)`: total growth of the label
    /// stack, i.e. the number of tunnels entered.
    pub fn tunnels(&self) -> u64 {
        self.steps
            .windows(2)
            .map(|w| (w[1].header.len() as u64).saturating_sub(w[0].header.len() as u64))
            .sum()
    }

    /// Validity per Definition 4: every step's link is active, and each
    /// consecutive pair is justified by an entry of the highest-priority
    /// active group for the current link and top label.
    pub fn is_valid(&self, net: &Network, failed: &HashSet<LinkId>) -> bool {
        for step in &self.steps {
            if failed.contains(&step.link) {
                return false;
            }
            if !step.header.is_valid(&net.labels) {
                return false;
            }
        }
        for w in self.steps.windows(2) {
            let (cur, next) = (&w[0], &w[1]);
            let Some(top) = cur.header.top() else {
                return false;
            };
            let groups = net.groups(cur.link, top);
            let Some(j) = active_group_index(groups, failed) else {
                return false;
            };
            let justified = groups[j].iter().any(|entry| {
                entry.out == next.link
                    && !failed.contains(&entry.out)
                    && cur.header.apply(&entry.ops, &net.labels).as_ref() == Some(&next.header)
            });
            if !justified {
                return false;
            }
        }
        true
    }

    /// Render the trace in the paper's `(e, h)(e, h)…` notation.
    pub fn display(&self, net: &Network) -> String {
        self.steps
            .iter()
            .map(|s| {
                format!(
                    "({}, {})",
                    net.topology.link_name(s.link),
                    s.header.display(&net.labels)
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;
    use crate::routing::{Op, RoutingEntry};
    use crate::topology::Topology;

    /// v0 -e0-> v1 -e1-> v2 with a backup v1 -e2-> v2; label swap along
    /// the way.
    struct Fix {
        net: Network,
        e0: LinkId,
        e1: LinkId,
        e2: LinkId,
        s1: crate::label::LabelId,
        s2: crate::label::LabelId,
        ip: crate::label::LabelId,
    }

    fn fix() -> Fix {
        let mut t = Topology::new();
        let v0 = t.add_router("v0", None);
        let v1 = t.add_router("v1", None);
        let v2 = t.add_router("v2", None);
        let e0 = t.add_link(v0, "i0", v1, "i1", 3);
        let e1 = t.add_link(v1, "i2", v2, "i3", 5);
        let e2 = t.add_link(v1, "i4", v2, "i5", 7);
        let mut labels = LabelTable::new();
        let s1 = labels.mpls_bos("s1");
        let s2 = labels.mpls_bos("s2");
        let ip = labels.ip("ip1");
        let mut net = Network::new(t, labels);
        net.add_rule(
            e0,
            s1,
            1,
            RoutingEntry {
                out: e1,
                ops: vec![Op::Swap(s2)].into(),
            },
        );
        net.add_rule(
            e0,
            s1,
            2,
            RoutingEntry {
                out: e2,
                ops: vec![Op::Swap(s2)].into(),
            },
        );
        Fix {
            net,
            e0,
            e1,
            e2,
            s1,
            s2,
            ip,
        }
    }

    fn step(link: LinkId, labels: &[crate::label::LabelId]) -> TraceStep {
        TraceStep {
            link,
            header: Header::from_top_first(labels.to_vec()),
        }
    }

    #[test]
    fn primary_trace_valid_without_failures() {
        let f = fix();
        let tr = Trace::new(vec![step(f.e0, &[f.s1, f.ip]), step(f.e1, &[f.s2, f.ip])]);
        assert!(tr.is_valid(&f.net, &HashSet::new()));
        assert_eq!(tr.failures(&f.net, &HashSet::new()), Some(0));
    }

    #[test]
    fn backup_trace_needs_failure() {
        let f = fix();
        let tr = Trace::new(vec![step(f.e0, &[f.s1, f.ip]), step(f.e2, &[f.s2, f.ip])]);
        // Without a failure the backup group is not the active one.
        assert!(!tr.is_valid(&f.net, &HashSet::new()));
        let failed: HashSet<LinkId> = [f.e1].into_iter().collect();
        assert!(tr.is_valid(&f.net, &failed));
        assert_eq!(tr.failures(&f.net, &failed), Some(1));
    }

    #[test]
    fn traversing_failed_link_invalid() {
        let f = fix();
        let tr = Trace::new(vec![step(f.e0, &[f.s1, f.ip]), step(f.e1, &[f.s2, f.ip])]);
        let failed: HashSet<LinkId> = [f.e0].into_iter().collect();
        assert!(!tr.is_valid(&f.net, &failed));
    }

    #[test]
    fn wrong_header_rewrite_invalid() {
        let f = fix();
        // claims the label stays s1 across the swap rule
        let tr = Trace::new(vec![step(f.e0, &[f.s1, f.ip]), step(f.e1, &[f.s1, f.ip])]);
        assert!(!tr.is_valid(&f.net, &HashSet::new()));
    }

    #[test]
    fn quantities_compute() {
        let f = fix();
        let tr = Trace::new(vec![step(f.e0, &[f.s1, f.ip]), step(f.e1, &[f.s2, f.ip])]);
        assert_eq!(tr.links(), 2);
        assert_eq!(tr.hops(&f.net), 2);
        assert_eq!(tr.distance(&f.net), 3 + 5);
        assert_eq!(tr.tunnels(), 0);
    }

    #[test]
    fn tunnels_count_stack_growth() {
        let f = fix();
        let tr = Trace::new(vec![
            step(f.e0, &[f.ip]),
            step(f.e1, &[f.s1, f.ip]),
            step(f.e2, &[f.ip]),
        ]);
        // 0 -> +1 -> -1: one tunnel entered.
        assert_eq!(tr.tunnels(), 1);
    }

    #[test]
    fn empty_trace_is_valid_and_zero() {
        let f = fix();
        let tr = Trace::default();
        assert!(tr.is_valid(&f.net, &HashSet::new()));
        assert_eq!(tr.links(), 0);
        assert_eq!(tr.hops(&f.net), 0);
        assert_eq!(tr.tunnels(), 0);
    }
}
