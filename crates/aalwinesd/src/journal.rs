//! Append-only write-ahead journal for the daemon's session state.
//!
//! Every state-changing operation (`load`, applied `delta`,
//! `subscribe`) is appended as one NDJSON record **before** it is
//! applied to the resident session; on startup the daemon replays the
//! journal to reconstruct the session a crash destroyed. Replay is a
//! pure function of the journal: deltas are recorded in canonical
//! dense-index form ([`aalwines::Delta::to_json`]), so a replayed
//! session answers byte-identically to a cold rebuild of the same
//! operation prefix.
//!
//! ## Record format
//!
//! One JSON object per line, with a fixed-width checksum prefix:
//!
//! ```json
//! {"crc":"89abcdef01234567","seq":3,"op":{"kind":"delta","delta":{...}}}
//! ```
//!
//! `crc` is the FNV-1a 64-bit hash (16 lowercase hex digits) of every
//! byte after its closing `",` — i.e. of `"seq":3,"op":{...}}`. Putting
//! the checksum first at a fixed offset means the checksummed region is
//! a plain byte suffix: no canonical-JSON re-serialization is needed to
//! verify it, and any torn or bit-flipped tail fails loudly.
//!
//! `seq` is 1-based and strictly increasing. A record that fails the
//! checksum, fails to parse, or breaks the sequence ends the replay:
//! everything from its first byte on is a **torn tail** and is
//! truncated from the file (a crash mid-`write` must not brick the
//! daemon), with the dropped bytes reported in [`Replay`].

use aalwines::telemetry::JsonObject;
use formats::json::{parse as parse_json, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit hash of `bytes` (the per-record checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One journaled state-changing operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalOp {
    /// A dataplane load; `spec` is the canonical load-spec JSON object
    /// (`{"demo":true}` or `{"topology":..,"routing":..[,..]}`).
    Load {
        /// Canonical load-spec JSON.
        spec: String,
    },
    /// An admitted dataplane delta; `delta` is the canonical
    /// dense-index JSON of [`aalwines::Delta::to_json`].
    Delta {
        /// Canonical delta JSON.
        delta: String,
    },
    /// A watched-query registration.
    Subscribe {
        /// The watched query's text.
        query: String,
    },
}

impl JournalOp {
    /// Serialize as the record's `op` object.
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        match self {
            JournalOp::Load { spec } => {
                o.string("kind", "load");
                o.raw("spec", spec);
            }
            JournalOp::Delta { delta } => {
                o.string("kind", "delta");
                o.raw("delta", delta);
            }
            JournalOp::Subscribe { query } => {
                o.string("kind", "subscribe");
                o.string("query", query);
            }
        }
        o.finish()
    }

    /// Parse a record's `op` object back; `None` for unknown kinds
    /// (forward compatibility: an unknown op ends the replay like a
    /// corrupt record would, since its effect cannot be reproduced).
    fn from_value(v: &Value) -> Option<JournalOp> {
        match v.get("kind").and_then(Value::as_str)? {
            "load" => Some(JournalOp::Load {
                spec: v.get("spec")?.to_json(),
            }),
            "delta" => Some(JournalOp::Delta {
                delta: v.get("delta")?.to_json(),
            }),
            "subscribe" => Some(JournalOp::Subscribe {
                query: v.get("query")?.as_str()?.to_string(),
            }),
            _ => None,
        }
    }
}

/// What [`Journal::open`] recovered from an existing journal file.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// The intact operations, in append order. The daemon re-applies
    /// them to reconstruct its session.
    pub ops: Vec<JournalOp>,
    /// Number of intact records (`ops.len()` as recorded on disk).
    pub records: u64,
    /// Bytes truncated off the tail (0 for a cleanly closed journal).
    pub truncated_bytes: u64,
    /// Newline-terminated records dropped by the truncation. A crash
    /// can tear at most the record being written, so anything above 1
    /// indicates real corruption, not just an unlucky `kill -9`.
    pub dropped_records: u64,
    /// Whether the replay is *clean*: every surviving record applied,
    /// and at most the single in-flight record was lost to the tear.
    pub clean: bool,
}

/// An append-only, checksummed NDJSON journal. See the
/// [module docs](self).
pub struct Journal {
    file: File,
    path: PathBuf,
    seq: u64,
}

/// Fixed layout prefix: `{"crc":"` (8 bytes) + 16 hex digits + `",`.
const CRC_PREFIX: &str = "{\"crc\":\"";
const BODY_OFFSET: usize = 8 + 16 + 2;

/// Validate one record line; returns `(seq, op)` when intact.
fn parse_record(line: &str, expect_seq: u64) -> Option<(u64, JournalOp)> {
    if line.len() <= BODY_OFFSET || !line.starts_with(CRC_PREFIX) {
        return None;
    }
    let stored = u64::from_str_radix(&line[8..24], 16).ok()?;
    if &line[24..26] != "\"," {
        return None;
    }
    let body = &line[BODY_OFFSET..];
    if fnv1a64(body.as_bytes()) != stored {
        return None;
    }
    let v = parse_json(line).ok()?;
    let seq = v.get("seq").and_then(Value::as_f64)? as u64;
    if seq != expect_seq {
        return None;
    }
    let op = JournalOp::from_value(v.get("op")?)?;
    Some((seq, op))
}

impl Journal {
    /// Open (creating if absent) the journal at `path`, replaying any
    /// existing records. A torn or corrupt tail is truncated off the
    /// file — recovery must never fail on the artifact of the very
    /// crash it exists to survive — and reported in the [`Replay`].
    pub fn open(path: &Path) -> std::io::Result<(Journal, Replay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)?;

        let mut replay = Replay {
            clean: true,
            ..Replay::default()
        };
        let mut good_len = 0usize; // bytes of validated, newline-terminated records
        let mut cursor = 0usize;
        let mut seq = 0u64;
        while cursor < contents.len() {
            let Some(nl) = contents[cursor..].iter().position(|&b| b == b'\n') else {
                break; // unterminated tail
            };
            let line_end = cursor + nl;
            let Ok(line) = std::str::from_utf8(&contents[cursor..line_end]) else {
                break;
            };
            let Some((s, op)) = parse_record(line, seq + 1) else {
                break;
            };
            seq = s;
            replay.ops.push(op);
            cursor = line_end + 1;
            good_len = cursor;
        }
        replay.records = replay.ops.len() as u64;
        if good_len < contents.len() {
            replay.truncated_bytes = (contents.len() - good_len) as u64;
            replay.dropped_records =
                contents[good_len..].iter().filter(|&&b| b == b'\n').count() as u64;
            // One lost record is the expected signature of a crash
            // mid-append; more means the file was damaged beyond that.
            replay.clean = replay.dropped_records <= 1;
            file.set_len(good_len as u64)?;
        }
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                seq,
            },
            replay,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended so far (including replayed ones).
    pub fn records(&self) -> u64 {
        self.seq
    }

    /// Append one operation, flushing it to the OS before returning, so
    /// a `kill -9` immediately after cannot lose it. Returns the
    /// record's sequence number.
    pub fn append(&mut self, op: &JournalOp) -> std::io::Result<u64> {
        let seq = self.seq + 1;
        let body = format!("\"seq\":{seq},\"op\":{}}}", op.to_json());
        let line = format!("{CRC_PREFIX}{:016x}\",{body}\n", fnv1a64(body.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.seq = seq;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "aalwinesd-journal-test-{}-{tag}.ndjson",
            std::process::id()
        ))
    }

    fn ops() -> Vec<JournalOp> {
        vec![
            JournalOp::Load {
                spec: "{\"demo\":true}".to_string(),
            },
            JournalOp::Delta {
                delta: "{\"kind\":\"link-down\",\"link\":7}".to_string(),
            },
            JournalOp::Subscribe {
                query: "<ip> .* <ip> 0".to_string(),
            },
        ]
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, replay) = Journal::open(&path).unwrap();
            assert_eq!(replay.records, 0);
            assert!(replay.clean);
            for (i, op) in ops().iter().enumerate() {
                assert_eq!(j.append(op).unwrap(), i as u64 + 1);
            }
            assert_eq!(j.records(), 3);
        }
        let (j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.ops, ops());
        assert_eq!(replay.truncated_bytes, 0);
        assert!(replay.clean);
        assert_eq!(j.records(), 3, "appends continue after the replayed tail");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for op in &ops() {
                j.append(op).unwrap();
            }
        }
        // Simulate a crash mid-append: a partial, unterminated record.
        let intact_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"crc\":\"dead").unwrap();
        }
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.ops, ops());
        assert!(replay.truncated_bytes > 0);
        assert_eq!(replay.dropped_records, 0);
        assert!(replay.clean, "a torn tail is an expected crash artifact");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);
        // The journal keeps appending where the intact prefix ended.
        assert_eq!(j.append(&ops()[1]).unwrap(), 4);
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_fails_the_checksum_and_ends_replay() {
        let path = temp_path("bitflip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for op in &ops() {
                j.append(op).unwrap();
            }
        }
        // Flip one byte inside the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        bytes[second_start + BODY_OFFSET + 3] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 1, "replay stops at the corrupt record");
        assert_eq!(replay.ops, ops()[..1]);
        assert!(replay.truncated_bytes > 0);
        assert_eq!(
            replay.dropped_records, 2,
            "both full records past the flip are dropped"
        );
        assert!(!replay.clean, "mid-file corruption is not a clean tear");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sequence_gaps_end_the_replay() {
        let path = temp_path("seqgap");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&ops()[0]).unwrap();
        }
        // Forge a record with a skipped sequence number (valid crc).
        {
            let body = "\"seq\":5,\"op\":{\"kind\":\"subscribe\",\"query\":\"q\"}}";
            let line = format!("{CRC_PREFIX}{:016x}\",{body}\n", fnv1a64(body.as_bytes()));
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(line.as_bytes()).unwrap();
        }
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, 1);
        assert!(replay.truncated_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }
}
