//! # aalwinesd — a resident what-if verification service
//!
//! A line-delimited-JSON daemon over a Unix domain socket that keeps
//! one dataplane loaded as an [`aalwines::Session`]: network
//! validation, query-independent precomputation, and the construction
//! cache all stay warm across requests, and dataplane deltas are
//! applied **incrementally** — only cached artifacts whose footprint
//! intersects the delta are invalidated, and changed answers to
//! subscribed queries are pushed to their clients.
//!
//! ## Wire protocol
//!
//! One JSON object per line in each direction. Requests carry a
//! `"verb"`; responses (and pushed updates) are versioned envelopes
//! `{"schemaVersion":1,"kind":...,"payload":...}`:
//!
//! | verb       | request fields                                  | response kind   |
//! |------------|-------------------------------------------------|-----------------|
//! | `load`     | `demo:true` \| `topology`,`routing`[,`locations`,`repair`] | `loaded` |
//! | `query`    | `query` (text)                                  | `answer`        |
//! | `batch`    | `queries` (array of texts)                      | `batch-result`  |
//! | `stats`    | —                                               | `session-stats` |
//! | `subscribe`| `query` (text)                                  | `subscribed`    |
//! | `delta`    | `delta` (object, see [`parse_delta`])           | `delta-report`  |
//! | `shutdown` | —                                               | `bye`           |
//!
//! After a `delta`, every subscriber whose watched query changed its
//! answer receives an unsolicited `"update"` envelope on its own
//! connection. Malformed requests answer an `"error"` envelope; the
//! connection stays open.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aalwines::telemetry::{envelope, JsonObject};
use aalwines::{Delta, Session, SessionBuilder};
use aalwines_suite::gui;
use formats::json::{parse as parse_json, Value};
use netmodel::{LabelId, LinkId, Network, Op, RoutingEntry};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A shared, interleaving-safe handle to one client's write side.
/// Responses and pushed updates both go through it, so a subscriber
/// never sees a torn line.
pub type Peer = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wrap a writer as a [`Peer`].
pub fn peer_of(w: impl Write + Send + 'static) -> Peer {
    Arc::new(Mutex::new(Box::new(w)))
}

/// Daemon configuration (session shape; the dataplane itself arrives
/// via `load` or [`Daemon::preload`]).
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Worker threads for `batch` requests.
    pub threads: usize,
    /// Construction-cache capacity in artifacts (0 disables caching).
    pub cache_size: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            threads: 1,
            cache_size: aalwines::DEFAULT_CACHE_SIZE,
        }
    }
}

/// One subscriber: the watch index inside the session and the
/// connection to push updates to.
struct Subscriber {
    index: usize,
    peer: Peer,
}

struct Shared {
    config: DaemonConfig,
    /// `None` until a dataplane is loaded. Queries take the read lock;
    /// `load`, `subscribe`, and `delta` take the write lock.
    session: RwLock<Option<Session>>,
    subscribers: Mutex<Vec<Subscriber>>,
    shutdown: AtomicBool,
    /// Socket path while serving (used to self-connect on shutdown so
    /// the accept loop wakes up).
    socket: Mutex<Option<PathBuf>>,
}

/// The resident verification service. See the [module docs](self).
#[derive(Clone)]
pub struct Daemon {
    shared: Arc<Shared>,
}

/// Envelope of kind `error` with a message payload.
fn error_envelope(message: &str) -> String {
    let mut o = JsonObject::new();
    o.string("message", message);
    envelope("error", &o.finish())
}

/// Resolve a link given as a dense index or as the topology's
/// `src.if->dst.if` name.
fn resolve_link(net: &Network, v: &Value) -> Result<LinkId, String> {
    if let Some(n) = v.as_f64() {
        let idx = n as usize;
        if idx < net.topology.num_links() as usize {
            return Ok(LinkId(idx as u32));
        }
        return Err(format!("link index {idx} out of range"));
    }
    if let Some(name) = v.as_str() {
        for l in 0..net.topology.num_links() {
            let id = LinkId(l);
            if net.topology.link_name(id) == name {
                return Ok(id);
            }
        }
        return Err(format!("no link named '{name}'"));
    }
    Err("link must be an index or a name".to_string())
}

/// Resolve a label given as a dense index or an interned name.
fn resolve_label(net: &Network, v: &Value) -> Result<LabelId, String> {
    if let Some(n) = v.as_f64() {
        let idx = n as usize;
        if idx < net.labels.len() {
            return Ok(LabelId(idx as u32));
        }
        return Err(format!("label index {idx} out of range"));
    }
    if let Some(name) = v.as_str() {
        return net
            .labels
            .get(name)
            .ok_or_else(|| format!("no label named '{name}'"));
    }
    Err("label must be an index or a name".to_string())
}

/// Parse the `ops` array of a rule delta: `"pop"`, `{"swap":label}`,
/// `{"push":label}`.
fn parse_ops(net: &Network, v: Option<&Value>) -> Result<Vec<Op>, String> {
    let Some(v) = v else {
        return Ok(Vec::new());
    };
    let Value::Array(items) = v else {
        return Err("ops must be an array".to_string());
    };
    let mut ops = Vec::with_capacity(items.len());
    for item in items {
        if item.as_str() == Some("pop") {
            ops.push(Op::Pop);
        } else if let Some(l) = item.get("swap") {
            ops.push(Op::Swap(resolve_label(net, l)?));
        } else if let Some(l) = item.get("push") {
            ops.push(Op::Push(resolve_label(net, l)?));
        } else {
            return Err(format!("unknown op {}", item.to_json()));
        }
    }
    Ok(ops)
}

/// Parse a delta object against the loaded network. Links and labels
/// may be given as dense indices or names; see the module docs for the
/// verb table and [`Delta`] for the semantics of each kind.
pub fn parse_delta(net: &Network, v: &Value) -> Result<Delta, String> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("delta needs a string 'kind'")?;
    let field = |k: &str| v.get(k).ok_or(format!("delta '{kind}' needs '{k}'"));
    let number = |k: &str| -> Result<usize, String> {
        field(k)?
            .as_f64()
            .map(|n| n as usize)
            .ok_or(format!("'{k}' must be a number"))
    };
    match kind {
        "link-down" => Ok(Delta::LinkDown(resolve_link(net, field("link")?)?)),
        "link-up" => Ok(Delta::LinkUp(resolve_link(net, field("link")?)?)),
        "set-priority" => Ok(Delta::SetPriority {
            in_link: resolve_link(net, field("inLink")?)?,
            label: resolve_label(net, field("label")?)?,
            from: number("from")?,
            to: number("to")?,
        }),
        "add-rule" | "remove-rule" => {
            let in_link = resolve_link(net, field("inLink")?)?;
            let label = resolve_label(net, field("label")?)?;
            let priority = number("priority")?;
            let entry = RoutingEntry {
                out: resolve_link(net, field("out")?)?,
                ops: parse_ops(net, v.get("ops"))?,
            };
            Ok(if kind == "add-rule" {
                Delta::AddRule {
                    in_link,
                    label,
                    priority,
                    entry,
                }
            } else {
                Delta::RemoveRule {
                    in_link,
                    label,
                    priority,
                    entry,
                }
            })
        }
        other => Err(format!("unknown delta kind '{other}'")),
    }
}

impl Daemon {
    /// A daemon with no dataplane loaded yet.
    pub fn new(config: DaemonConfig) -> Self {
        Daemon {
            shared: Arc::new(Shared {
                config,
                session: RwLock::new(None),
                subscribers: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                socket: Mutex::new(None),
            }),
        }
    }

    /// Install an already-loaded dataplane (the `--demo` /
    /// `--topology` CLI path), replacing any current session.
    pub fn preload(&self, net: Network) {
        let session = self.build_session(net);
        *self.shared.session.write().unwrap() = Some(session);
    }

    fn build_session(&self, net: Network) -> Session {
        SessionBuilder::new()
            .threads(self.shared.config.threads)
            .cache_size(self.shared.config.cache_size)
            .open(net)
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Handle one request line on behalf of `peer`, returning the
    /// response envelope (without trailing newline). Pushed updates to
    /// other subscribers are written as a side effect.
    pub fn handle(&self, line: &str, peer: &Peer) -> String {
        let request = match parse_json(line) {
            Ok(v) => v,
            Err(e) => return error_envelope(&format!("bad request JSON: {e}")),
        };
        let Some(verb) = request.get("verb").and_then(Value::as_str) else {
            return error_envelope("request needs a string 'verb'");
        };
        match verb {
            "load" => self.handle_load(&request),
            "query" => self.handle_query(&request),
            "batch" => self.handle_batch(&request),
            "stats" => self.handle_stats(),
            "subscribe" => self.handle_subscribe(&request, peer),
            "delta" => self.handle_delta(&request),
            "shutdown" => self.handle_shutdown(peer),
            other => error_envelope(&format!("unknown verb '{other}'")),
        }
    }

    fn handle_load(&self, request: &Value) -> String {
        let net = if request.get("demo").map(|v| v == &Value::Bool(true)) == Some(true) {
            aalwines::examples::paper_network()
        } else {
            let path_field = |k: &str| -> Result<String, String> {
                match request.get(k) {
                    Some(v) => v
                        .as_str()
                        .map(str::to_string)
                        .ok_or(format!("'{k}' must be a path string")),
                    None => Err(format!("load needs 'demo':true or '{k}'")),
                }
            };
            let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
            let loaded = (|| {
                let topo = read(&path_field("topology")?)?;
                let routes = read(&path_field("routing")?)?;
                let locations = match request.get("locations").and_then(Value::as_str) {
                    Some(p) => Some(read(p)?),
                    None => None,
                };
                let repair = request.get("repair") == Some(&Value::Bool(true));
                aalwines_suite::load_dataplane(&topo, &routes, locations.as_deref(), repair)
                    .map_err(|e| e.to_string())
            })();
            match loaded {
                Ok(net) => net,
                Err(e) => return error_envelope(&e),
            }
        };
        let session = self.build_session(net);
        let stats = session.stats();
        *self.shared.session.write().unwrap() = Some(session);
        // Watch indices of the previous dataplane are meaningless now.
        self.shared.subscribers.lock().unwrap().clear();
        envelope("loaded", &stats.to_json())
    }

    /// Run `f` under the session read lock, or answer `error` when no
    /// dataplane is loaded.
    fn with_session(&self, f: impl FnOnce(&Session) -> String) -> String {
        match self.shared.session.read().unwrap().as_ref() {
            Some(session) => f(session),
            None => error_envelope("no dataplane loaded (send 'load' first)"),
        }
    }

    fn handle_query(&self, request: &Value) -> String {
        let Some(text) = request.get("query").and_then(Value::as_str) else {
            return error_envelope("query needs a string 'query'");
        };
        self.with_session(|session| match session.verify_text(text) {
            Ok(answer) => envelope(
                "answer",
                &gui::answer_to_json(session.network(), text, &answer).to_json(),
            ),
            Err(e) => error_envelope(&format!("parse error: {e}")),
        })
    }

    fn handle_batch(&self, request: &Value) -> String {
        let Some(Value::Array(items)) = request.get("queries") else {
            return error_envelope("batch needs an array 'queries'");
        };
        let mut texts = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match item.as_str() {
                Some(t) => texts.push(t),
                None => return error_envelope(&format!("queries[{i}] is not a string")),
            }
        }
        let mut parsed = Vec::with_capacity(texts.len());
        for (i, t) in texts.iter().enumerate() {
            match query::parse_query(t) {
                Ok(q) => parsed.push(q),
                Err(e) => return error_envelope(&format!("queries[{i}]: {e}")),
            }
        }
        self.with_session(|session| {
            let answers = session.verify_batch(&parsed);
            let summary = aalwines::BatchSummary::summarize(&answers);
            let rendered: Vec<String> = answers
                .iter()
                .zip(&texts)
                .map(|(a, t)| gui::answer_to_json(session.network(), t, a).to_json())
                .collect();
            let mut o = JsonObject::new();
            o.raw("answers", &format!("[{}]", rendered.join(",")));
            o.raw("summary", &summary.to_json());
            envelope("batch-result", &o.finish())
        })
    }

    fn handle_stats(&self) -> String {
        self.with_session(|session| envelope("session-stats", &session.stats().to_json()))
    }

    fn handle_subscribe(&self, request: &Value, peer: &Peer) -> String {
        let Some(text) = request.get("query").and_then(Value::as_str) else {
            return error_envelope("subscribe needs a string 'query'");
        };
        let mut guard = self.shared.session.write().unwrap();
        let Some(session) = guard.as_mut() else {
            return error_envelope("no dataplane loaded (send 'load' first)");
        };
        match session.watch(text) {
            Ok((index, answer)) => {
                self.shared.subscribers.lock().unwrap().push(Subscriber {
                    index,
                    peer: Arc::clone(peer),
                });
                let mut o = JsonObject::new();
                o.number("index", index as f64);
                o.raw(
                    "answer",
                    &gui::answer_to_json(session.network(), text, &answer).to_json(),
                );
                envelope("subscribed", &o.finish())
            }
            Err(e) => error_envelope(&format!("parse error: {e}")),
        }
    }

    fn handle_delta(&self, request: &Value) -> String {
        let Some(spec) = request.get("delta") else {
            return error_envelope("delta needs an object 'delta'");
        };
        let mut guard = self.shared.session.write().unwrap();
        let Some(session) = guard.as_mut() else {
            return error_envelope("no dataplane loaded (send 'load' first)");
        };
        let delta = match parse_delta(session.network(), spec) {
            Ok(d) => d,
            Err(e) => return error_envelope(&e),
        };
        let report = session.apply_delta(&delta);
        // Push changed answers to the affected subscribers while still
        // holding the session lock, so a concurrent delta cannot
        // reorder updates.
        for changed in &report.changed {
            let mut o = JsonObject::new();
            o.number("index", changed.index as f64);
            o.string("query", &changed.query);
            o.raw(
                "answer",
                &gui::answer_to_json(session.network(), &changed.query, &changed.answer).to_json(),
            );
            let update = envelope("update", &o.finish());
            let subscribers = self.shared.subscribers.lock().unwrap();
            for sub in subscribers.iter().filter(|s| s.index == changed.index) {
                let mut w = sub.peer.lock().unwrap();
                // A dead subscriber is dropped on its own thread's exit;
                // ignore its broken pipe here.
                let _ = writeln!(w, "{update}");
                let _ = w.flush();
            }
        }
        let mut o = JsonObject::new();
        o.string("delta", delta.kind());
        o.raw("report", &report.to_json());
        envelope("delta-report", &o.finish())
    }

    fn handle_shutdown(&self, peer: &Peer) -> String {
        // Deliver the farewell *before* raising the shutdown flag:
        // once the flag is up the accept loop (and, in the binary, the
        // whole process) may exit ahead of a response queued the normal
        // way, closing the connection with no `bye` on it.
        {
            let mut w = peer.lock().unwrap();
            let _ = writeln!(w, "{}", envelope("bye", "{}"));
            let _ = w.flush();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        if let Some(path) = self.shared.socket.lock().unwrap().clone() {
            let _ = UnixStream::connect(path);
        }
        String::new()
    }

    /// Drop subscriber registrations pushing to `peer` (its client
    /// disconnected).
    fn drop_peer(&self, peer: &Peer) {
        self.shared
            .subscribers
            .lock()
            .unwrap()
            .retain(|s| !Arc::ptr_eq(&s.peer, peer));
    }

    /// Serve clients on a Unix domain socket at `path` until a
    /// `shutdown` request arrives. A stale socket file at `path` is
    /// removed first; the file is removed again on exit.
    pub fn serve(&self, path: &Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        *self.shared.socket.lock().unwrap() = Some(path.to_path_buf());
        for stream in listener.incoming() {
            if self.is_shut_down() {
                break;
            }
            let stream = stream?;
            let daemon = self.clone();
            std::thread::spawn(move || daemon.serve_client(stream));
        }
        *self.shared.socket.lock().unwrap() = None;
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    fn serve_client(&self, stream: UnixStream) {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let peer = peer_of(write_half);
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle(&line, &peer);
            // An empty response means the handler already wrote to the
            // peer itself (the shutdown farewell).
            if !response.is_empty() {
                let mut w = peer.lock().unwrap();
                if writeln!(w, "{response}").is_err() || w.flush().is_err() {
                    break;
                }
            }
            if self.is_shut_down() {
                break;
            }
        }
        self.drop_peer(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory peer for socket-free protocol tests.
    fn sink() -> Peer {
        peer_of(Vec::new())
    }

    fn demo_daemon() -> Daemon {
        let d = Daemon::new(DaemonConfig::default());
        d.preload(aalwines::examples::paper_network());
        d
    }

    fn kind_of(envelope: &str) -> String {
        parse_json(envelope)
            .unwrap()
            .get("kind")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    #[test]
    fn envelopes_are_versioned_and_kinded() {
        let d = demo_daemon();
        let resp = d.handle(r#"{"verb":"stats"}"#, &sink());
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("schemaVersion").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("session-stats"));
        assert!(v.get("payload").is_some());
    }

    #[test]
    fn query_answers_against_resident_session() {
        let d = demo_daemon();
        let resp = d.handle(
            r#"{"verb":"query","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
            &sink(),
        );
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("answer"));
        let result = v
            .get("payload")
            .and_then(|p| p.get("result"))
            .and_then(Value::as_str);
        assert_eq!(result, Some("satisfied"));
    }

    #[test]
    fn unloaded_daemon_answers_errors_not_panics() {
        let d = Daemon::new(DaemonConfig::default());
        for req in [
            r#"{"verb":"query","query":"<ip> .* <ip> 0"}"#,
            r#"{"verb":"stats"}"#,
            r#"{"verb":"delta","delta":{"kind":"link-down","link":0}}"#,
        ] {
            assert_eq!(kind_of(&d.handle(req, &sink())), "error");
        }
    }

    #[test]
    fn malformed_requests_answer_error() {
        let d = demo_daemon();
        for req in [
            "not json",
            r#"{"no":"verb"}"#,
            r#"{"verb":"frobnicate"}"#,
            r#"{"verb":"delta","delta":{"kind":"link-down","link":"nonexistent"}}"#,
            r#"{"verb":"batch","queries":"not-an-array"}"#,
        ] {
            assert_eq!(kind_of(&d.handle(req, &sink())), "error", "{req}");
        }
    }

    #[test]
    fn delta_reports_invalidation_counters() {
        let d = demo_daemon();
        // Warm the cache first.
        d.handle(
            r#"{"verb":"query","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
            &sink(),
        );
        let resp = d.handle(
            r#"{"verb":"delta","delta":{"kind":"link-down","link":0}}"#,
            &sink(),
        );
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("delta-report"));
        let report = v.get("payload").and_then(|p| p.get("report")).unwrap();
        assert_eq!(report.get("applied"), Some(&Value::Bool(true)));
        assert!(report.get("invalidated").and_then(Value::as_f64).is_some());
        assert!(report.get("retained").and_then(Value::as_f64).is_some());
    }

    #[test]
    fn load_demo_over_the_protocol() {
        let d = Daemon::new(DaemonConfig::default());
        let resp = d.handle(r#"{"verb":"load","demo":true}"#, &sink());
        assert_eq!(kind_of(&resp), "loaded");
        assert_eq!(
            kind_of(&d.handle(r#"{"verb":"stats"}"#, &sink())),
            "session-stats"
        );
    }
}
