//! # aalwinesd — a resident what-if verification service
//!
//! A line-delimited-JSON daemon over a Unix domain socket that keeps
//! one dataplane loaded as an [`aalwines::Session`]: network
//! validation, query-independent precomputation, and the construction
//! cache all stay warm across requests, and dataplane deltas are
//! applied **incrementally** — only cached artifacts whose footprint
//! intersects the delta are invalidated, and changed answers to
//! subscribed queries are pushed to their clients.
//!
//! ## Wire protocol
//!
//! One JSON object per line in each direction. Requests carry a
//! `"verb"`; responses (and pushed updates) are versioned envelopes
//! `{"schemaVersion":1,"kind":...,"payload":...}`:
//!
//! | verb       | request fields                                  | response kind   |
//! |------------|-------------------------------------------------|-----------------|
//! | `load`     | `demo:true` \| `topology`,`routing`[,`locations`,`repair`] | `loaded` |
//! | `query`    | `query` (text)                                  | `answer`        |
//! | `batch`    | `queries` (array of texts)[,`window`,`progressMillis`] | `batch-answer`×N, then `batch-result` |
//! | `stats`    | —                                               | `session-stats` |
//! | `health`   | —                                               | `health`        |
//! | `subscribe`| `query` (text)                                  | `subscribed`    |
//! | `delta`    | `delta` (object, see [`parse_delta`])           | `delta-report`  |
//! | `lint`     | —                                               | `lint-report`   |
//! | `shutdown` | —                                               | `bye`           |
//!
//! After a `delta`, every subscriber whose watched query changed its
//! answer receives an unsolicited `"update"` envelope on its own
//! connection, and — when the incremental re-lint changed the report or
//! produced delta-native findings — every subscriber receives a
//! `"lint-update"` envelope with the added/removed/delta findings and
//! the invalidation counters. After a `load`, every subscriber receives
//! a `"reset"` envelope (its watch indices died with the old dataplane)
//! before the subscriber list is cleared. Malformed requests answer an
//! `"error"` envelope; the connection stays open.
//!
//! The lint report is resident: it is primed when a dataplane loads
//! (including journal replay, so a restarted daemon reconstructs the
//! same lint state) and every admitted delta re-lints only the routing
//! keys whose footprint the delta touches, staying byte-identical to a
//! cold `dplint` run on the mutated network.
//!
//! ## Robustness
//!
//! The daemon is built to survive crashes, restarts, and hostile
//! clients:
//!
//! * **Durability.** With [`Daemon::with_journal`] every state-changing
//!   op (`load`, admitted `delta`, `subscribe`) is appended to a
//!   checksummed write-ahead [`journal`] *before* it is applied; on
//!   startup the journal is replayed (truncating a torn tail) so a
//!   `kill -9` loses at most the record being written.
//! * **Admission control.** At most [`DaemonConfig::max_clients`]
//!   concurrent connections; excess connections get a `busy` envelope
//!   and are closed instead of queueing unboundedly. Frames are capped
//!   at [`DaemonConfig::max_frame_bytes`] and a frame that stays
//!   incomplete longer than [`DaemonConfig::read_timeout`] gets a
//!   structured `error` — a slow or oversized client costs one
//!   connection, never a wedged thread.
//! * **Graceful degradation.** When resident bytes exceed
//!   [`DaemonConfig::max_resident_bytes`], construction-cache entries
//!   are shed LRU-first; if even that is not enough, new subscriptions
//!   are refused until memory recovers. A panicking request handler is
//!   caught per connection ([`std::panic::catch_unwind`]): the client
//!   gets an `error` and its connection closes, every other client —
//!   and the daemon — keeps running. The `health` verb reports uptime,
//!   journal state, replay cleanliness, pressure level, and last error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;

pub use journal::{Journal, JournalOp, Replay};

use aalwines::telemetry::{envelope, JsonObject, PressureState};
use aalwines::{Delta, Session, SessionBuilder, StreamEvent, StreamOptions};
use aalwines_suite::gui;
use formats::json::{parse as parse_json, Value};
use netmodel::{LabelId, LinkId, Network, Op, RoutingEntry};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poison: a panicking handler thread is
/// already degraded to an error response by the connection supervisor,
/// and every mutation under these locks is a complete operation, so the
/// data is structurally sound — sibling connections must keep serving
/// rather than panic in a chain.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant read lock (see [`lock`]).
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant write lock (see [`lock`]).
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// A shared, interleaving-safe handle to one client's write side.
/// Responses and pushed updates both go through it, so a subscriber
/// never sees a torn line.
pub type Peer = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wrap a writer as a [`Peer`].
pub fn peer_of(w: impl Write + Send + 'static) -> Peer {
    Arc::new(Mutex::new(Box::new(w)))
}

/// Daemon configuration (session shape plus service limits; the
/// dataplane itself arrives via `load` or [`Daemon::preload`]).
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Worker threads for `batch` requests.
    pub threads: usize,
    /// Threads used *inside* each single verification (sharded
    /// saturation + concurrent over/under phases). 0/1 = sequential;
    /// answers are byte-identical at any setting.
    pub saturation_threads: usize,
    /// Construction-cache capacity in artifacts (0 disables caching).
    pub cache_size: usize,
    /// Maximum concurrent client connections; further connections are
    /// shed with a `busy` envelope instead of queueing.
    pub max_clients: usize,
    /// Maximum bytes of one NDJSON request frame; an oversized frame
    /// answers a structured `error` and closes the connection.
    pub max_frame_bytes: usize,
    /// How long a *started* frame may stay incomplete before the
    /// connection is treated as stalled and closed with an `error`. An
    /// idle connection (no pending bytes, e.g. a subscriber waiting for
    /// pushes) is never timed out.
    pub read_timeout: Duration,
    /// Resident-memory budget in bytes (0 = unbounded). Past it, cache
    /// entries are shed LRU-first; if the budget still cannot be met,
    /// new subscriptions are refused until memory recovers.
    pub max_resident_bytes: usize,
    /// Enable test-only verbs (`debug-panic`) used to exercise the
    /// per-connection panic supervisor. Never enable in production.
    pub debug_verbs: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            threads: 1,
            saturation_threads: 1,
            cache_size: aalwines::DEFAULT_CACHE_SIZE,
            max_clients: DEFAULT_MAX_CLIENTS,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_resident_bytes: 0,
            debug_verbs: false,
        }
    }
}

/// Default concurrent-connection cap.
pub const DEFAULT_MAX_CLIENTS: usize = 64;
/// Default request-frame size cap (256 KiB — far above any legitimate
/// batch request, far below a memory-exhaustion payload).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 256 * 1024;
/// Default stalled-frame timeout.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// How the daemon recovered its state from a journal at startup; part
/// of the `health` payload.
#[derive(Clone, Debug, Default)]
pub struct ReplayStatus {
    /// Whether a journal is attached at all.
    pub enabled: bool,
    /// Intact records replayed at startup.
    pub records: u64,
    /// Bytes truncated off a torn tail at startup.
    pub truncated_bytes: u64,
    /// Whole records dropped by the truncation (>1 implies corruption
    /// beyond an ordinary crash tear).
    pub dropped_records: u64,
    /// Whether the replay was clean: every intact record re-applied
    /// successfully and at most one in-flight record was lost.
    pub clean: bool,
    /// First error hit while re-applying records, if any.
    pub error: Option<String>,
}

impl ReplayStatus {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.number("records", self.records as f64);
        o.number("truncatedBytes", self.truncated_bytes as f64);
        o.number("droppedRecords", self.dropped_records as f64);
        o.boolean("clean", self.clean);
        match &self.error {
            Some(e) => o.string("error", e),
            None => o.null("error"),
        }
        o.finish()
    }
}

/// One subscriber: the watch index inside the session and the
/// connection to push updates to.
struct Subscriber {
    index: usize,
    peer: Peer,
}

struct Shared {
    config: DaemonConfig,
    /// `None` until a dataplane is loaded. Queries take the read lock;
    /// `load`, `subscribe`, and `delta` take the write lock.
    session: RwLock<Option<Session>>,
    subscribers: Mutex<Vec<Subscriber>>,
    shutdown: AtomicBool,
    /// Socket path while serving (used to self-connect on shutdown so
    /// the accept loop wakes up).
    socket: Mutex<Option<PathBuf>>,
    /// When the daemon came up (for `health` uptime).
    started: Instant,
    /// Write-ahead journal, if durability is enabled. Appended to while
    /// holding the session write lock, so journal order equals state
    /// order.
    journal: Mutex<Option<Journal>>,
    /// How startup replay went (static after construction).
    replay: Mutex<ReplayStatus>,
    /// Currently connected clients (admission control).
    active_clients: AtomicUsize,
    /// Current [`PressureState`], encoded via `as_u8`.
    pressure: AtomicU8,
    /// Times the memory budget forced cache shedding.
    shed_events: AtomicUsize,
    /// State-changing ops applied but *not* journaled because an append
    /// failed — a nonzero lag means a restart would lose them.
    journal_lag: AtomicUsize,
    /// Most recent internal error (journal failure, handler panic).
    last_error: Mutex<Option<String>>,
}

/// The resident verification service. See the [module docs](self).
#[derive(Clone)]
pub struct Daemon {
    shared: Arc<Shared>,
}

/// Envelope of kind `error` with a message payload.
fn error_envelope(message: &str) -> String {
    let mut o = JsonObject::new();
    o.string("message", message);
    envelope("error", &o.finish())
}

/// Resolve a link given as a dense index or as the topology's
/// `src.if->dst.if` name.
fn resolve_link(net: &Network, v: &Value) -> Result<LinkId, String> {
    if let Some(n) = v.as_f64() {
        let idx = n as usize;
        if idx < net.topology.num_links() as usize {
            return Ok(LinkId(idx as u32));
        }
        return Err(format!("link index {idx} out of range"));
    }
    if let Some(name) = v.as_str() {
        for l in 0..net.topology.num_links() {
            let id = LinkId(l);
            if net.topology.link_name(id) == name {
                return Ok(id);
            }
        }
        return Err(format!("no link named '{name}'"));
    }
    Err("link must be an index or a name".to_string())
}

/// Resolve a label given as a dense index or an interned name.
fn resolve_label(net: &Network, v: &Value) -> Result<LabelId, String> {
    if let Some(n) = v.as_f64() {
        let idx = n as usize;
        if idx < net.labels.len() {
            return Ok(LabelId(idx as u32));
        }
        return Err(format!("label index {idx} out of range"));
    }
    if let Some(name) = v.as_str() {
        return net
            .labels
            .get(name)
            .ok_or_else(|| format!("no label named '{name}'"));
    }
    Err("label must be an index or a name".to_string())
}

/// Parse the `ops` array of a rule delta: `"pop"`, `{"swap":label}`,
/// `{"push":label}`.
fn parse_ops(net: &Network, v: Option<&Value>) -> Result<Vec<Op>, String> {
    let Some(v) = v else {
        return Ok(Vec::new());
    };
    let Value::Array(items) = v else {
        return Err("ops must be an array".to_string());
    };
    let mut ops = Vec::with_capacity(items.len());
    for item in items {
        if item.as_str() == Some("pop") {
            ops.push(Op::Pop);
        } else if let Some(l) = item.get("swap") {
            ops.push(Op::Swap(resolve_label(net, l)?));
        } else if let Some(l) = item.get("push") {
            ops.push(Op::Push(resolve_label(net, l)?));
        } else {
            return Err(format!("unknown op {}", item.to_json()));
        }
    }
    Ok(ops)
}

/// Parse a delta object against the loaded network. Links and labels
/// may be given as dense indices or names; see the module docs for the
/// verb table and [`Delta`] for the semantics of each kind.
pub fn parse_delta(net: &Network, v: &Value) -> Result<Delta, String> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("delta needs a string 'kind'")?;
    let field = |k: &str| v.get(k).ok_or(format!("delta '{kind}' needs '{k}'"));
    let number = |k: &str| -> Result<usize, String> {
        field(k)?
            .as_f64()
            .map(|n| n as usize)
            .ok_or(format!("'{k}' must be a number"))
    };
    match kind {
        "link-down" => Ok(Delta::LinkDown(resolve_link(net, field("link")?)?)),
        "link-up" => Ok(Delta::LinkUp(resolve_link(net, field("link")?)?)),
        "set-priority" => Ok(Delta::SetPriority {
            in_link: resolve_link(net, field("inLink")?)?,
            label: resolve_label(net, field("label")?)?,
            from: number("from")?,
            to: number("to")?,
        }),
        "add-rule" | "remove-rule" => {
            let in_link = resolve_link(net, field("inLink")?)?;
            let label = resolve_label(net, field("label")?)?;
            let priority = number("priority")?;
            let entry = RoutingEntry {
                out: resolve_link(net, field("out")?)?,
                ops: parse_ops(net, v.get("ops"))?.into(),
            };
            Ok(if kind == "add-rule" {
                Delta::AddRule {
                    in_link,
                    label,
                    priority,
                    entry,
                }
            } else {
                Delta::RemoveRule {
                    in_link,
                    label,
                    priority,
                    entry,
                }
            })
        }
        other => Err(format!("unknown delta kind '{other}'")),
    }
}

/// Build a [`Network`] from a canonical load-spec object
/// (`{"demo":true}` or `{"topology":..,"routing":..[,"locations":..]
/// [,"repair":..]}`) — the shape `load` requests are normalized to and
/// the journal records.
fn load_from_spec(spec: &Value) -> Result<Network, String> {
    if spec.get("demo").map(|v| v == &Value::Bool(true)) == Some(true) {
        return Ok(aalwines::examples::paper_network());
    }
    let path_field = |k: &str| -> Result<String, String> {
        match spec.get(k) {
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or(format!("'{k}' must be a path string")),
            None => Err(format!("load needs 'demo':true or '{k}'")),
        }
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let topo = read(&path_field("topology")?)?;
    let routes = read(&path_field("routing")?)?;
    let locations = match spec.get("locations").and_then(Value::as_str) {
        Some(p) => Some(read(p)?),
        None => None,
    };
    let repair = spec.get("repair") == Some(&Value::Bool(true));
    aalwines_suite::load_dataplane(&topo, &routes, locations.as_deref(), repair)
        .map_err(|e| e.to_string())
}

/// Normalize a `load` request into the canonical spec object recorded
/// in the journal (paths and flags only — never file contents).
fn load_spec_of(request: &Value) -> String {
    let mut o = JsonObject::new();
    if request.get("demo").map(|v| v == &Value::Bool(true)) == Some(true) {
        o.boolean("demo", true);
        return o.finish();
    }
    for k in ["topology", "routing", "locations"] {
        if let Some(p) = request.get(k).and_then(Value::as_str) {
            o.string(k, p);
        }
    }
    if request.get("repair") == Some(&Value::Bool(true)) {
        o.boolean("repair", true);
    }
    o.finish()
}

impl Daemon {
    /// A daemon with no dataplane loaded yet (and no journal: state
    /// dies with the process).
    pub fn new(config: DaemonConfig) -> Self {
        Daemon {
            shared: Arc::new(Shared {
                config,
                session: RwLock::new(None),
                subscribers: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                socket: Mutex::new(None),
                started: Instant::now(),
                journal: Mutex::new(None),
                replay: Mutex::new(ReplayStatus::default()),
                active_clients: AtomicUsize::new(0),
                pressure: AtomicU8::new(PressureState::Normal.as_u8()),
                shed_events: AtomicUsize::new(0),
                journal_lag: AtomicUsize::new(0),
                last_error: Mutex::new(None),
            }),
        }
    }

    /// A durable daemon: open (creating if absent) the write-ahead
    /// journal at `path`, replay any records it holds — truncating a
    /// torn tail from a previous crash — and reconstruct the session
    /// they describe: the loaded dataplane, every applied delta, and
    /// the watched queries. Subsequent state-changing requests are
    /// journaled before they are applied.
    pub fn with_journal(config: DaemonConfig, path: &Path) -> std::io::Result<Daemon> {
        let (journal, replay) = Journal::open(path)?;
        let daemon = Daemon::new(config);
        let mut status = ReplayStatus {
            enabled: true,
            records: replay.records,
            truncated_bytes: replay.truncated_bytes,
            dropped_records: replay.dropped_records,
            clean: replay.clean,
            error: None,
        };
        let fail = |status: &mut ReplayStatus, msg: String| {
            status.clean = false;
            if status.error.is_none() {
                status.error = Some(msg);
            }
        };

        let mut session: Option<Session> = None;
        // Re-subscribing after every reconnect appends a fresh record,
        // so dedupe watches by text during replay to keep the watched
        // set (and re-verification work) bounded across restarts.
        let mut watched: Vec<String> = Vec::new();
        for op in &replay.ops {
            match op {
                JournalOp::Load { spec } => {
                    let loaded = parse_json(spec)
                        .map_err(|e| e.to_string())
                        .and_then(|v| load_from_spec(&v));
                    match loaded {
                        Ok(net) => {
                            session = Some(daemon.build_session(net));
                            watched.clear();
                        }
                        Err(e) => fail(&mut status, format!("replaying load: {e}")),
                    }
                }
                JournalOp::Delta { delta } => match session.as_mut() {
                    Some(s) => {
                        let parsed = parse_json(delta)
                            .map_err(|e| e.to_string())
                            .and_then(|v| parse_delta(s.network(), &v));
                        match parsed {
                            Ok(d) => {
                                s.apply_delta(&d);
                            }
                            Err(e) => fail(&mut status, format!("replaying delta: {e}")),
                        }
                    }
                    None => fail(&mut status, "journaled delta precedes any load".to_string()),
                },
                JournalOp::Subscribe { query } => {
                    if let Some(s) = session.as_mut() {
                        if !watched.iter().any(|w| w == query) {
                            match s.watch(query) {
                                Ok(_) => watched.push(query.clone()),
                                Err(e) => fail(&mut status, format!("replaying subscribe: {e}")),
                            }
                        }
                    }
                }
            }
        }
        if let Some(s) = &session {
            daemon.enforce_budget(s);
        }
        *write_lock(&daemon.shared.session) = session;
        *lock(&daemon.shared.journal) = Some(journal);
        *lock(&daemon.shared.replay) = status;
        Ok(daemon)
    }

    /// Whether a dataplane is currently loaded (e.g. restored by
    /// journal replay).
    pub fn is_loaded(&self) -> bool {
        read_lock(&self.shared.session).is_some()
    }

    /// How startup journal replay went.
    pub fn replay_status(&self) -> ReplayStatus {
        lock(&self.shared.replay).clone()
    }

    /// Install an already-loaded dataplane (the `--demo` /
    /// `--topology` CLI path), replacing any current session.
    pub fn preload(&self, net: Network) {
        self.preload_with_spec(net, None);
    }

    /// Like [`Daemon::preload`], and — when `spec` is given and a
    /// journal is attached — record the load so a restart replays it.
    pub fn preload_with_spec(&self, net: Network, spec: Option<&str>) {
        let session = self.build_session(net);
        let mut guard = write_lock(&self.shared.session);
        if let Some(spec) = spec {
            self.journal_append(JournalOp::Load {
                spec: spec.to_string(),
            });
        }
        self.enforce_budget(&session);
        *guard = Some(session);
    }

    fn build_session(&self, net: Network) -> Session {
        let mut session = SessionBuilder::new()
            .threads(self.shared.config.threads)
            .saturation_threads(self.shared.config.saturation_threads)
            .cache_size(self.shared.config.cache_size)
            .open(net);
        // Prime the resident lint state with the freshly loaded
        // dataplane: deltas re-lint incrementally from here on, and —
        // because every path to a session goes through this
        // constructor — journal replay reconstructs the same lint
        // state a crashed daemon had (the resident report is a pure
        // function of the current network and watched queries).
        session.lint();
        session
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Handle one request line on behalf of `peer`, returning the
    /// response envelope (without trailing newline). Pushed updates to
    /// other subscribers are written as a side effect.
    pub fn handle(&self, line: &str, peer: &Peer) -> String {
        let request = match parse_json(line) {
            Ok(v) => v,
            Err(e) => return error_envelope(&format!("bad request JSON: {e}")),
        };
        let Some(verb) = request.get("verb").and_then(Value::as_str) else {
            return error_envelope("request needs a string 'verb'");
        };
        match verb {
            "load" => self.handle_load(&request),
            "query" => self.handle_query(&request),
            "batch" => self.handle_batch(&request, peer),
            "stats" => self.handle_stats(),
            "health" => self.handle_health(),
            "subscribe" => self.handle_subscribe(&request, peer),
            "delta" => self.handle_delta(&request),
            "lint" => self.handle_lint(),
            "shutdown" => self.handle_shutdown(peer),
            "debug-panic" if self.shared.config.debug_verbs => {
                panic!("debug-panic requested by client")
            }
            other => error_envelope(&format!("unknown verb '{other}'")),
        }
    }

    fn handle_load(&self, request: &Value) -> String {
        let spec_text = load_spec_of(request);
        let spec = match parse_json(&spec_text) {
            Ok(v) => v,
            Err(e) => return error_envelope(&format!("bad load spec: {e}")),
        };
        let net = match load_from_spec(&spec) {
            Ok(net) => net,
            Err(e) => return error_envelope(&e),
        };
        let session = self.build_session(net);
        let stats = session.stats();
        let mut guard = write_lock(&self.shared.session);
        self.journal_append(JournalOp::Load { spec: spec_text });
        self.enforce_budget(&session);
        *guard = Some(session);
        // Watch indices of the previous dataplane are meaningless now —
        // tell each subscriber so, before forgetting it, while still
        // holding the session lock (a racing `subscribe` against the new
        // dataplane must not be swept up in the clear).
        let reset = {
            let mut o = JsonObject::new();
            o.string(
                "reason",
                "dataplane reloaded; watches cleared, re-subscribe to resume updates",
            );
            envelope("reset", &o.finish())
        };
        let mut subs = lock(&self.shared.subscribers);
        for sub in subs.iter() {
            let mut w = lock(&sub.peer);
            let _ = writeln!(w, "{reset}");
            let _ = w.flush();
        }
        subs.clear();
        envelope("loaded", &stats.to_json())
    }

    /// Run `f` under the session read lock, or answer `error` when no
    /// dataplane is loaded.
    fn with_session(&self, f: impl FnOnce(&Session) -> String) -> String {
        match read_lock(&self.shared.session).as_ref() {
            Some(session) => f(session),
            None => error_envelope("no dataplane loaded (send 'load' first)"),
        }
    }

    fn handle_query(&self, request: &Value) -> String {
        let Some(text) = request.get("query").and_then(Value::as_str) else {
            return error_envelope("query needs a string 'query'");
        };
        self.with_session(|session| match session.verify_text(text) {
            Ok(answer) => envelope(
                "answer",
                &gui::answer_to_json(session.network(), text, &answer).to_json(),
            ),
            Err(e) => error_envelope(&format!("parse error: {e}")),
        })
    }

    fn handle_batch(&self, request: &Value, peer: &Peer) -> String {
        let Some(Value::Array(items)) = request.get("queries") else {
            return error_envelope("batch needs an array 'queries'");
        };
        let mut texts = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match item.as_str() {
                Some(t) => texts.push(t.to_string()),
                None => return error_envelope(&format!("queries[{i}] is not a string")),
            }
        }
        let mut stream = StreamOptions::new();
        if let Some(w) = request.get("window").and_then(Value::as_f64) {
            stream = stream.with_window(w as usize);
        }
        if let Some(ms) = request.get("progressMillis").and_then(Value::as_f64) {
            stream = stream.with_progress_interval(Duration::from_millis(ms as u64));
        }
        self.with_session(|session| {
            // Answers stream to the requesting peer as `batch-answer`
            // envelopes in input order (plus `batch-progress` ticks when
            // requested); only the aggregate summary is held — and
            // returned as the final `batch-result`. A malformed query
            // becomes a per-answer parse error instead of rejecting the
            // whole batch.
            let summary = session.verify_stream(texts.into_iter(), &stream, &mut |ev| {
                let line = match ev {
                    StreamEvent::Answer {
                        index,
                        text,
                        answer,
                        parse_error,
                    } => {
                        let mut o = JsonObject::new();
                        o.number("index", index as f64);
                        o.boolean("parseError", parse_error);
                        o.raw(
                            "answer",
                            &gui::answer_to_json(session.network(), text, answer).to_json(),
                        );
                        envelope("batch-answer", &o.finish())
                    }
                    StreamEvent::Progress(p) => envelope("batch-progress", &p.to_json()),
                };
                let mut w = lock(peer);
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            });
            envelope("batch-result", &summary.to_json())
        })
    }

    fn handle_stats(&self) -> String {
        self.with_session(|session| envelope("session-stats", &session.stats().to_json()))
    }

    /// Current pressure level (set by [`Daemon::enforce_budget`]).
    fn pressure(&self) -> PressureState {
        PressureState::from_u8(self.shared.pressure.load(Ordering::Relaxed))
    }

    fn set_pressure(&self, p: PressureState) {
        self.shared.pressure.store(p.as_u8(), Ordering::Relaxed);
    }

    /// Enforce the resident-memory budget on `session`: shed
    /// construction-cache entries LRU-first when over it, and — when
    /// even an empty cache cannot meet the budget — raise the pressure
    /// to `Refusing` so new subscriptions are turned away until memory
    /// recovers. No-op when the budget is 0 (unbounded).
    fn enforce_budget(&self, session: &Session) {
        let budget = self.shared.config.max_resident_bytes;
        if budget == 0 {
            return;
        }
        if session.bytes_resident() <= budget {
            self.set_pressure(PressureState::Normal);
            return;
        }
        if session.shed_cache_to(budget) > 0 {
            self.shared.shed_events.fetch_add(1, Ordering::Relaxed);
        }
        if session.bytes_resident() <= budget {
            self.set_pressure(PressureState::Shedding);
        } else {
            self.set_pressure(PressureState::Refusing);
        }
    }

    /// Append `op` to the journal, if one is attached. Callers hold the
    /// session write lock, so journal order equals state-mutation
    /// order. An append failure must not take the daemon down: the op
    /// proceeds in memory and the failure surfaces as journal lag (and
    /// `lastError`) in `health`.
    fn journal_append(&self, op: JournalOp) {
        let mut guard = lock(&self.shared.journal);
        let Some(journal) = guard.as_mut() else {
            return;
        };
        if let Err(e) = journal.append(&op) {
            self.shared.journal_lag.fetch_add(1, Ordering::Relaxed);
            self.record_error(&format!("journal append failed: {e}"));
        }
    }

    fn record_error(&self, msg: &str) {
        *lock(&self.shared.last_error) = Some(msg.to_string());
    }

    fn handle_health(&self) -> String {
        let mut o = JsonObject::new();
        o.number("uptimeMs", self.shared.started.elapsed().as_millis() as f64);
        let (resident, lint_millis, lint_hits) = match read_lock(&self.shared.session).as_ref() {
            Some(s) => {
                let stats = s.stats();
                (
                    Some(s.bytes_resident()),
                    stats.lint_millis,
                    stats.lint_incremental_hits,
                )
            }
            None => (None, 0.0, 0),
        };
        o.boolean("loaded", resident.is_some());
        o.number("residentBytes", resident.unwrap_or(0) as f64);
        o.number(
            "saturationThreads",
            self.shared.config.saturation_threads.max(1) as f64,
        );
        o.number("lintMillis", lint_millis);
        o.number("lintIncrementalHits", lint_hits as f64);
        o.number(
            "maxResidentBytes",
            self.shared.config.max_resident_bytes as f64,
        );
        o.string("pressure", self.pressure().as_str());
        o.number(
            "shedEvents",
            self.shared.shed_events.load(Ordering::Relaxed) as f64,
        );
        o.number(
            "activeClients",
            self.shared.active_clients.load(Ordering::Relaxed) as f64,
        );
        o.number("subscribers", lock(&self.shared.subscribers).len() as f64);
        {
            let journal = lock(&self.shared.journal);
            let mut j = JsonObject::new();
            j.boolean("enabled", journal.is_some());
            if let Some(journal) = journal.as_ref() {
                j.string("path", &journal.path().display().to_string());
                j.number("records", journal.records() as f64);
            }
            j.number(
                "lagRecords",
                self.shared.journal_lag.load(Ordering::Relaxed) as f64,
            );
            o.raw("journal", &j.finish());
        }
        {
            let replay = lock(&self.shared.replay);
            if replay.enabled {
                o.raw("replay", &replay.to_json());
            } else {
                o.null("replay");
            }
        }
        match lock(&self.shared.last_error).as_deref() {
            Some(e) => o.string("lastError", e),
            None => o.null("lastError"),
        }
        envelope("health", &o.finish())
    }

    fn handle_subscribe(&self, request: &Value, peer: &Peer) -> String {
        let Some(text) = request.get("query").and_then(Value::as_str) else {
            return error_envelope("subscribe needs a string 'query'");
        };
        let mut guard = write_lock(&self.shared.session);
        let Some(session) = guard.as_mut() else {
            return error_envelope("no dataplane loaded (send 'load' first)");
        };
        if self.pressure() == PressureState::Refusing {
            return error_envelope(
                "over the resident-memory budget: refusing new subscriptions until memory recovers",
            );
        }
        match session.watch(text) {
            Ok((index, answer)) => {
                self.journal_append(JournalOp::Subscribe {
                    query: text.to_string(),
                });
                lock(&self.shared.subscribers).push(Subscriber {
                    index,
                    peer: Arc::clone(peer),
                });
                let mut o = JsonObject::new();
                o.number("index", index as f64);
                o.raw(
                    "answer",
                    &gui::answer_to_json(session.network(), text, &answer).to_json(),
                );
                let response = envelope("subscribed", &o.finish());
                self.enforce_budget(session);
                response
            }
            Err(e) => error_envelope(&format!("parse error: {e}")),
        }
    }

    /// Serialize a slice of lint findings as a JSON array.
    fn findings_json(findings: &[dplint::LintFinding]) -> String {
        let items: Vec<String> = findings.iter().map(|f| f.to_json()).collect();
        format!("[{}]", items.join(","))
    }

    fn handle_lint(&self) -> String {
        // `Session::lint` is `&mut` (it accounts lint time into the
        // session's telemetry), so this takes the write lock like
        // `delta` does.
        let mut guard = write_lock(&self.shared.session);
        let Some(session) = guard.as_mut() else {
            return error_envelope("no dataplane loaded (send 'load' first)");
        };
        let outcome = session.lint();
        let mut o = JsonObject::new();
        o.raw("report", &outcome.report.to_json());
        o.raw("stats", &outcome.stats.to_json());
        envelope("lint-report", &o.finish())
    }

    fn handle_delta(&self, request: &Value) -> String {
        let Some(spec) = request.get("delta") else {
            return error_envelope("delta needs an object 'delta'");
        };
        let mut guard = write_lock(&self.shared.session);
        let Some(session) = guard.as_mut() else {
            return error_envelope("no dataplane loaded (send 'load' first)");
        };
        let delta = match parse_delta(session.network(), spec) {
            Ok(d) => d,
            Err(e) => return error_envelope(&e),
        };
        // Write-ahead: journal the canonical form before mutating, so a
        // crash between the two replays the delta rather than losing it.
        self.journal_append(JournalOp::Delta {
            delta: delta.to_json(),
        });
        let report = session.apply_delta(&delta);
        // Push changed answers to the affected subscribers while still
        // holding the session lock, so a concurrent delta cannot
        // reorder updates.
        for changed in &report.changed {
            let mut o = JsonObject::new();
            o.number("index", changed.index as f64);
            o.string("query", &changed.query);
            o.raw(
                "answer",
                &gui::answer_to_json(session.network(), &changed.query, &changed.answer).to_json(),
            );
            let update = envelope("update", &o.finish());
            let subscribers = lock(&self.shared.subscribers);
            for sub in subscribers.iter().filter(|s| s.index == changed.index) {
                let mut w = lock(&sub.peer);
                // A dead subscriber is dropped on its own thread's exit;
                // ignore its broken pipe here.
                let _ = writeln!(w, "{update}");
                let _ = w.flush();
            }
        }
        // The lint report is session-global, so a changed report (or a
        // delta-native finding) is pushed to *every* subscriber — not
        // just those whose verification answer changed.
        if let Some(lint) = &report.lint {
            if lint.changed() > 0 || !lint.delta_findings.is_empty() {
                let mut o = JsonObject::new();
                o.string("delta", delta.kind());
                o.raw("added", &Self::findings_json(&lint.added));
                o.raw("removed", &Self::findings_json(&lint.removed));
                o.raw("deltaFindings", &Self::findings_json(&lint.delta_findings));
                o.number("lintInvalidated", lint.invalidated as f64);
                o.number("lintRetained", lint.retained as f64);
                let update = envelope("lint-update", &o.finish());
                let subscribers = lock(&self.shared.subscribers);
                for sub in subscribers.iter() {
                    let mut w = lock(&sub.peer);
                    let _ = writeln!(w, "{update}");
                    let _ = w.flush();
                }
            }
        }
        let mut o = JsonObject::new();
        o.string("delta", delta.kind());
        o.raw("report", &report.to_json());
        let response = envelope("delta-report", &o.finish());
        self.enforce_budget(session);
        response
    }

    fn handle_shutdown(&self, peer: &Peer) -> String {
        // Deliver the farewell *before* raising the shutdown flag:
        // once the flag is up the accept loop (and, in the binary, the
        // whole process) may exit ahead of a response queued the normal
        // way, closing the connection with no `bye` on it.
        {
            let mut w = lock(peer);
            let _ = writeln!(w, "{}", envelope("bye", "{}"));
            let _ = w.flush();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        if let Some(path) = lock(&self.shared.socket).clone() {
            let _ = UnixStream::connect(path);
        }
        String::new()
    }

    /// Drop subscriber registrations pushing to `peer` (its client
    /// disconnected).
    fn drop_peer(&self, peer: &Peer) {
        lock(&self.shared.subscribers).retain(|s| !Arc::ptr_eq(&s.peer, peer));
    }

    /// Serve clients on a Unix domain socket at `path` until a
    /// `shutdown` request arrives. A stale socket file at `path` is
    /// removed first; the file is removed again on exit.
    ///
    /// Admission control: with [`DaemonConfig::max_clients`] clients
    /// already connected, a new connection is answered a single `busy`
    /// envelope and closed — overload sheds load instead of queueing
    /// threads without bound.
    pub fn serve(&self, path: &Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        *lock(&self.shared.socket) = Some(path.to_path_buf());
        for stream in listener.incoming() {
            if self.is_shut_down() {
                break;
            }
            let mut stream = stream?;
            let admitted = self.shared.active_clients.load(Ordering::SeqCst)
                < self.shared.config.max_clients.max(1);
            if !admitted {
                let mut o = JsonObject::new();
                o.string("message", "server at capacity; retry later");
                o.number("maxClients", self.shared.config.max_clients as f64);
                let _ = writeln!(stream, "{}", envelope("busy", &o.finish()));
                let _ = stream.flush();
                continue; // dropping the stream closes it
            }
            self.shared.active_clients.fetch_add(1, Ordering::SeqCst);
            let daemon = self.clone();
            std::thread::spawn(move || {
                daemon.serve_client(stream);
                daemon.shared.active_clients.fetch_sub(1, Ordering::SeqCst);
            });
        }
        *lock(&self.shared.socket) = None;
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    fn serve_client(&self, stream: UnixStream) {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        // Short socket timeout as a poll tick: lets a started frame
        // observe its deadline and an idle connection notice shutdown.
        let tick = self
            .shared
            .config
            .read_timeout
            .min(Duration::from_millis(200))
            .max(Duration::from_millis(10));
        let _ = stream.set_read_timeout(Some(tick));
        let peer = peer_of(write_half);
        let mut reader = BufReader::new(stream);
        loop {
            let line = match self.read_frame(&mut reader) {
                Frame::Line(line) => line,
                Frame::Closed | Frame::Shutdown => break,
                Frame::TooLarge => {
                    let msg = format!(
                        "request frame exceeds {} bytes; closing connection",
                        self.shared.config.max_frame_bytes
                    );
                    let mut w = lock(&peer);
                    let _ = writeln!(w, "{}", error_envelope(&msg));
                    let _ = w.flush();
                    break;
                }
                Frame::Stalled => {
                    let msg = format!(
                        "request frame stalled for over {:?}; closing connection",
                        self.shared.config.read_timeout
                    );
                    let mut w = lock(&peer);
                    let _ = writeln!(w, "{}", error_envelope(&msg));
                    let _ = w.flush();
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            // Per-connection supervisor: a panicking handler costs this
            // client an error and its connection — never the daemon.
            let (response, fatal) =
                match catch_unwind(AssertUnwindSafe(|| self.handle(&line, &peer))) {
                    Ok(response) => (response, false),
                    Err(panic) => {
                        let text = panic_text(panic.as_ref());
                        self.record_error(&format!("request handler panicked: {text}"));
                        (
                            error_envelope(&format!(
                                "internal error: request handler panicked: {text}"
                            )),
                            true,
                        )
                    }
                };
            // An empty response means the handler already wrote to the
            // peer itself (the shutdown farewell).
            if !response.is_empty() {
                let mut w = lock(&peer);
                if writeln!(w, "{response}").is_err() || w.flush().is_err() {
                    break;
                }
            }
            if fatal || self.is_shut_down() {
                break;
            }
        }
        self.drop_peer(&peer);
    }

    /// Read one newline-terminated frame, enforcing the frame-size cap
    /// and the stalled-frame deadline. The deadline arms only once the
    /// first byte of a frame arrives, so an idle connection (e.g. a
    /// subscriber waiting for pushes) can sit quiet forever.
    fn read_frame(&self, reader: &mut BufReader<UnixStream>) -> Frame {
        let max = self.shared.config.max_frame_bytes.max(1);
        let mut buf: Vec<u8> = Vec::new();
        let mut started: Option<Instant> = None;
        loop {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    if self.is_shut_down() {
                        return Frame::Shutdown;
                    }
                    if let Some(t0) = started {
                        if t0.elapsed() >= self.shared.config.read_timeout {
                            return Frame::Stalled;
                        }
                    }
                    continue;
                }
                Err(_) => return Frame::Closed,
            };
            if chunk.is_empty() {
                return Frame::Closed; // EOF
            }
            if started.is_none() {
                started = Some(Instant::now());
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&chunk[..pos]);
                    reader.consume(pos + 1);
                    if buf.len() > max {
                        return Frame::TooLarge;
                    }
                    // Lossy decoding turns invalid UTF-8 into a frame
                    // the JSON parser rejects with a structured error.
                    return Frame::Line(String::from_utf8_lossy(&buf).into_owned());
                }
                None => {
                    let len = chunk.len();
                    buf.extend_from_slice(chunk);
                    reader.consume(len);
                    if buf.len() > max {
                        return Frame::TooLarge;
                    }
                }
            }
        }
    }
}

/// Outcome of reading one request frame off a client connection.
enum Frame {
    /// A complete newline-terminated frame (newline stripped).
    Line(String),
    /// EOF or a hard I/O error: the client is gone.
    Closed,
    /// The frame exceeded [`DaemonConfig::max_frame_bytes`].
    TooLarge,
    /// A started frame sat incomplete past [`DaemonConfig::read_timeout`].
    Stalled,
    /// The daemon is shutting down.
    Shutdown,
}

/// Best-effort text of a caught panic payload.
fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory peer for socket-free protocol tests.
    fn sink() -> Peer {
        peer_of(Vec::new())
    }

    fn demo_daemon() -> Daemon {
        let d = Daemon::new(DaemonConfig::default());
        d.preload(aalwines::examples::paper_network());
        d
    }

    fn kind_of(envelope: &str) -> String {
        parse_json(envelope)
            .unwrap()
            .get("kind")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    #[test]
    fn envelopes_are_versioned_and_kinded() {
        let d = demo_daemon();
        let resp = d.handle(r#"{"verb":"stats"}"#, &sink());
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("schemaVersion").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("session-stats"));
        assert!(v.get("payload").is_some());
    }

    #[test]
    fn query_answers_against_resident_session() {
        let d = demo_daemon();
        let resp = d.handle(
            r#"{"verb":"query","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
            &sink(),
        );
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("answer"));
        let result = v
            .get("payload")
            .and_then(|p| p.get("result"))
            .and_then(Value::as_str);
        assert_eq!(result, Some("satisfied"));
    }

    #[test]
    fn unloaded_daemon_answers_errors_not_panics() {
        let d = Daemon::new(DaemonConfig::default());
        for req in [
            r#"{"verb":"query","query":"<ip> .* <ip> 0"}"#,
            r#"{"verb":"stats"}"#,
            r#"{"verb":"delta","delta":{"kind":"link-down","link":0}}"#,
        ] {
            assert_eq!(kind_of(&d.handle(req, &sink())), "error");
        }
    }

    #[test]
    fn malformed_requests_answer_error() {
        let d = demo_daemon();
        for req in [
            "not json",
            r#"{"no":"verb"}"#,
            r#"{"verb":"frobnicate"}"#,
            r#"{"verb":"delta","delta":{"kind":"link-down","link":"nonexistent"}}"#,
            r#"{"verb":"batch","queries":"not-an-array"}"#,
        ] {
            assert_eq!(kind_of(&d.handle(req, &sink())), "error", "{req}");
        }
    }

    #[test]
    fn batch_streams_per_answer_envelopes() {
        let d = demo_daemon();
        let capture = Capture::default();
        let peer: Peer = peer_of(capture.clone());
        let resp = d.handle(
            r#"{"verb":"batch","queries":["<ip> [.#v0] .* [v3#.] <ip> 0","definitely not a query","<ip> [.#v3] .* [v0#.] <ip> 2"],"progressMillis":0}"#,
            &peer,
        );
        // The final response is the summary only; answers arrived as
        // pushed `batch-answer` envelopes in input order.
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("batch-result"));
        let payload = v.get("payload").unwrap();
        assert_eq!(
            payload.get("parseErrors").and_then(Value::as_f64),
            Some(1.0)
        );
        assert!(payload.get("batch").is_some());
        assert!(payload
            .get("peakInFlight")
            .and_then(Value::as_f64)
            .is_some());

        let pushed = capture.text();
        let mut indices = Vec::new();
        let mut progress_seen = false;
        for line in pushed.lines() {
            let v = parse_json(line).unwrap();
            match v.get("kind").and_then(Value::as_str) {
                Some("batch-answer") => {
                    let p = v.get("payload").unwrap();
                    indices.push(p.get("index").and_then(Value::as_f64).unwrap() as usize);
                    if indices.len() == 2 {
                        // The malformed middle query came back as a
                        // per-answer parse error, not a batch abort.
                        assert_eq!(p.get("parseError"), Some(&Value::Bool(true)));
                    }
                }
                Some("batch-progress") => progress_seen = true,
                other => panic!("unexpected pushed kind {other:?}"),
            }
        }
        assert_eq!(indices, [0, 1, 2], "answers must arrive in input order");
        assert!(progress_seen, "progressMillis:0 must tick at least once");
    }

    #[test]
    fn delta_reports_invalidation_counters() {
        let d = demo_daemon();
        // Warm the cache first.
        d.handle(
            r#"{"verb":"query","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
            &sink(),
        );
        let resp = d.handle(
            r#"{"verb":"delta","delta":{"kind":"link-down","link":0}}"#,
            &sink(),
        );
        let v = parse_json(&resp).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("delta-report"));
        let report = v.get("payload").and_then(|p| p.get("report")).unwrap();
        assert_eq!(report.get("applied"), Some(&Value::Bool(true)));
        assert!(report.get("invalidated").and_then(Value::as_f64).is_some());
        assert!(report.get("retained").and_then(Value::as_f64).is_some());
    }

    #[test]
    fn load_demo_over_the_protocol() {
        let d = Daemon::new(DaemonConfig::default());
        let resp = d.handle(r#"{"verb":"load","demo":true}"#, &sink());
        assert_eq!(kind_of(&resp), "loaded");
        assert_eq!(
            kind_of(&d.handle(r#"{"verb":"stats"}"#, &sink())),
            "session-stats"
        );
    }

    /// A peer whose written bytes the test can read back.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(lock(&self.0).clone()).unwrap()
        }
    }

    #[test]
    fn health_answers_with_or_without_a_session() {
        let d = Daemon::new(DaemonConfig::default());
        let v = parse_json(&d.handle(r#"{"verb":"health"}"#, &sink())).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("health"));
        let p = v.get("payload").unwrap();
        assert_eq!(p.get("loaded"), Some(&Value::Bool(false)));
        assert_eq!(p.get("pressure").and_then(Value::as_str), Some("normal"));
        assert_eq!(
            p.get("journal").and_then(|j| j.get("enabled")),
            Some(&Value::Bool(false))
        );

        d.preload(aalwines::examples::paper_network());
        let v = parse_json(&d.handle(r#"{"verb":"health"}"#, &sink())).unwrap();
        let p = v.get("payload").unwrap();
        assert_eq!(p.get("loaded"), Some(&Value::Bool(true)));
        assert!(p.get("residentBytes").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn load_pushes_reset_to_subscribers_before_clearing_them() {
        let d = demo_daemon();
        let capture = Capture::default();
        let peer = peer_of(capture.clone());
        let resp = d.handle(
            r#"{"verb":"subscribe","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
            &peer,
        );
        assert_eq!(kind_of(&resp), "subscribed");
        assert_eq!(
            kind_of(&d.handle(r#"{"verb":"load","demo":true}"#, &sink())),
            "loaded"
        );
        let pushed = capture.text();
        let v = parse_json(pushed.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("reset"));
        assert_eq!(v.get("schemaVersion").and_then(Value::as_f64), Some(1.0));
        assert!(lock(&d.shared.subscribers).is_empty());
    }

    #[test]
    fn subscriptions_are_refused_while_over_the_memory_budget() {
        let d = Daemon::new(DaemonConfig {
            max_resident_bytes: 1, // precomp alone exceeds this
            ..DaemonConfig::default()
        });
        d.preload(aalwines::examples::paper_network());
        assert_eq!(d.pressure(), PressureState::Refusing);
        let resp = d.handle(r#"{"verb":"subscribe","query":"<ip> .* <ip> 0"}"#, &sink());
        assert_eq!(kind_of(&resp), "error");
        assert!(resp.contains("refusing new subscriptions"), "{resp}");
        // Plain queries still work: degradation, not denial of service.
        assert_eq!(
            kind_of(&d.handle(
                r#"{"verb":"query","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
                &sink()
            )),
            "answer"
        );
    }

    #[test]
    fn a_panicking_handler_poisons_nothing_for_other_connections() {
        let d = Daemon::new(DaemonConfig {
            debug_verbs: true,
            ..DaemonConfig::default()
        });
        d.preload(aalwines::examples::paper_network());
        // Panic while holding no locks (the verb panics in dispatch)...
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            d.handle(r#"{"verb":"debug-panic"}"#, &sink())
        }));
        assert!(panicked.is_err());
        // ...and the daemon keeps answering on other "connections".
        assert_eq!(
            kind_of(&d.handle(r#"{"verb":"stats"}"#, &sink())),
            "session-stats"
        );
    }

    #[test]
    fn journal_restart_restores_session_deltas_and_watches() {
        let path = std::env::temp_dir().join(format!(
            "aalwinesd-libtest-journal-{}.ndjson",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let query = "<ip> [.#v0] .* [v3#.] <ip> 0";
        let answer_before;
        {
            let d = Daemon::with_journal(DaemonConfig::default(), &path).unwrap();
            assert!(!d.is_loaded());
            assert_eq!(
                kind_of(&d.handle(r#"{"verb":"load","demo":true}"#, &sink())),
                "loaded"
            );
            assert_eq!(
                kind_of(&d.handle(
                    &format!(r#"{{"verb":"subscribe","query":"{query}"}}"#),
                    &sink()
                )),
                "subscribed"
            );
            assert_eq!(
                kind_of(&d.handle(
                    r#"{"verb":"delta","delta":{"kind":"link-down","link":0}}"#,
                    &sink()
                )),
                "delta-report"
            );
            answer_before = d.handle(&format!(r#"{{"verb":"query","query":"{query}"}}"#), &sink());
        }
        // "Restart": a fresh daemon over the same journal.
        let d = Daemon::with_journal(DaemonConfig::default(), &path).unwrap();
        assert!(d.is_loaded(), "replay reloads the dataplane");
        let status = d.replay_status();
        assert!(status.clean, "{:?}", status.error);
        assert_eq!(status.records, 3);
        {
            let guard = read_lock(&d.shared.session);
            let s = guard.as_ref().unwrap();
            assert_eq!(s.downed_links(), vec![LinkId(0)]);
            assert_eq!(s.watched_queries(), vec![query]);
        }
        let answer_after = d.handle(&format!(r#"{{"verb":"query","query":"{query}"}}"#), &sink());
        assert_eq!(
            strip_stats(&answer_before),
            strip_stats(&answer_after),
            "replayed session answers identically to the pre-crash one"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lint_verb_answers_the_resident_report() {
        let d = demo_daemon();
        let v = parse_json(&d.handle(r#"{"verb":"lint"}"#, &sink())).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("lint-report"));
        let p = v.get("payload").unwrap();
        // The paper network lints clean, and the report was primed at
        // load — this call is a cache hit, not a cold lint.
        assert_eq!(
            p.get("report").and_then(|r| r.get("findings")),
            Some(&Value::Array(Vec::new()))
        );
        assert!(p
            .get("stats")
            .and_then(|st| st.get("lintMillis"))
            .and_then(Value::as_f64)
            .is_some());
        let health = parse_json(&d.handle(r#"{"verb":"health"}"#, &sink())).unwrap();
        assert!(health
            .get("payload")
            .and_then(|h| h.get("lintIncrementalHits"))
            .and_then(Value::as_f64)
            .is_some());
    }

    /// A delta that rewrites `s10` traffic at v1 to an out-label v3 has
    /// no rule for: a manufactured blackhole, observable as both a
    /// changed report (DP010 added) and a delta-native DP016 finding.
    const BLACKHOLE_DELTA: &str = concat!(
        r#"{"verb":"delta","delta":{"kind":"add-rule","inLink":2,"label":"s10","#,
        r#""priority":1,"out":3,"ops":[{"swap":"s20"}]}}"#
    );

    #[test]
    fn delta_pushes_lint_update_to_every_subscriber() {
        let d = demo_daemon();
        let capture = Capture::default();
        let peer = peer_of(capture.clone());
        assert_eq!(
            kind_of(&d.handle(
                r#"{"verb":"subscribe","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
                &peer,
            )),
            "subscribed"
        );
        assert_eq!(kind_of(&d.handle(BLACKHOLE_DELTA, &sink())), "delta-report");
        let pushed = capture.text();
        let lint_update = pushed
            .lines()
            .map(|l| parse_json(l).unwrap())
            .find(|v| v.get("kind").and_then(Value::as_str) == Some("lint-update"))
            .expect("subscriber received a lint-update push");
        let p = lint_update.get("payload").unwrap();
        let added = match p.get("added") {
            Some(Value::Array(items)) => items,
            other => panic!("added is {other:?}"),
        };
        assert!(!added.is_empty());
        let delta_findings = p.get("deltaFindings").unwrap().to_json();
        assert!(delta_findings.contains("DP016"), "{delta_findings}");
        assert!(p.get("lintInvalidated").and_then(Value::as_f64).is_some());
        assert!(p.get("lintRetained").and_then(Value::as_f64).is_some());
    }

    #[test]
    fn journal_replay_reconstructs_lint_state() {
        let path = std::env::temp_dir().join(format!(
            "aalwinesd-libtest-lint-journal-{}.ndjson",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let report_before;
        {
            let d = Daemon::with_journal(DaemonConfig::default(), &path).unwrap();
            assert_eq!(
                kind_of(&d.handle(r#"{"verb":"load","demo":true}"#, &sink())),
                "loaded"
            );
            assert_eq!(kind_of(&d.handle(BLACKHOLE_DELTA, &sink())), "delta-report");
            report_before = d.handle(r#"{"verb":"lint"}"#, &sink());
        }
        let d = Daemon::with_journal(DaemonConfig::default(), &path).unwrap();
        let report_after = d.handle(r#"{"verb":"lint"}"#, &sink());
        // The resident report is a pure function of the current network
        // (and watched queries), so replaying the journal rebuilds it
        // exactly; only the timing/hit stats differ.
        let report_of = |envelope: &str| {
            parse_json(envelope)
                .unwrap()
                .get("payload")
                .and_then(|p| p.get("report"))
                .cloned()
                .unwrap()
        };
        let before = report_of(&report_before);
        assert_eq!(before, report_of(&report_after));
        assert!(before.to_json().contains("DP010"), "{}", before.to_json());
        let _ = std::fs::remove_file(&path);
    }

    /// Drop the volatile timing `stats` from an `answer` payload.
    fn strip_stats(envelope: &str) -> Value {
        let mut v = parse_json(envelope).unwrap();
        if let Value::Object(o) = &mut v {
            if let Some(Value::Object(payload)) = o.get_mut("payload") {
                payload.remove("stats");
            }
        }
        v
    }
}
