//! CLI entry point for `aalwinesd`: bind a Unix socket, optionally
//! preload a dataplane (or restore one from the write-ahead journal),
//! and serve the NDJSON protocol until `shutdown`.

use aalwines::telemetry::JsonObject;
use aalwinesd::{Daemon, DaemonConfig};
use formats::json::{parse as parse_json, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
aalwinesd — resident what-if verification service (NDJSON over a Unix socket)

USAGE:
    aalwinesd --socket PATH [--demo | --topology T.xml --routing R.xml]
              [--locations L.json] [--repair] [--threads N] [--sat-threads N]
              [--cache-size N]
              [--journal PATH] [--max-clients N] [--max-frame-bytes N]
              [--read-timeout-ms N] [--max-resident-bytes N]
    aalwinesd --smoke | --smoke-reconnect

OPTIONS:
    --socket PATH            Unix domain socket to listen on
    --demo                   preload the paper's example network
    --topology PATH          preload: topology XML
    --routing PATH           preload: routing XML
    --locations PATH         preload: optional router-coordinate JSON
    --repair                 drop ill-formed rules while preloading
    --threads N              worker threads for batch requests (default 1)
    --sat-threads N          threads inside each single verification; answers
                             are byte-identical at any setting (default 1)
    --cache-size N           construction-cache capacity (default 256, 0 = off)
    --journal PATH           write-ahead journal: replay it at startup, then
                             record every load/delta/subscribe for crash safety
    --max-clients N          concurrent-connection cap; extra connections get
                             a 'busy' envelope (default 64)
    --max-frame-bytes N      request-frame size cap (default 262144)
    --read-timeout-ms N      stalled-frame deadline; idle connections are
                             never timed out (default 10000)
    --max-resident-bytes N   resident-memory budget: past it, cache entries
                             are shed LRU-first, then new subscriptions are
                             refused (default 0 = unbounded)
    --debug-verbs            enable test-only verbs (debug-panic); never use
                             in production
    --smoke                  run a self-contained end-to-end exercise and exit
    --smoke-reconnect        kill -9 a child daemon mid-stream and verify the
                             journal replay + client reconnect path; exit
";

struct Args {
    socket: Option<PathBuf>,
    demo: bool,
    topology: Option<String>,
    routing: Option<String>,
    locations: Option<String>,
    repair: bool,
    threads: usize,
    sat_threads: usize,
    cache_size: usize,
    journal: Option<PathBuf>,
    max_clients: usize,
    max_frame_bytes: usize,
    read_timeout_ms: u64,
    max_resident_bytes: usize,
    debug_verbs: bool,
    smoke: bool,
    smoke_reconnect: bool,
}

fn parse_args() -> Result<Args, String> {
    let defaults = DaemonConfig::default();
    let mut args = Args {
        socket: None,
        demo: false,
        topology: None,
        routing: None,
        locations: None,
        repair: false,
        threads: 1,
        sat_threads: 1,
        cache_size: aalwines::DEFAULT_CACHE_SIZE,
        journal: None,
        max_clients: defaults.max_clients,
        max_frame_bytes: defaults.max_frame_bytes,
        read_timeout_ms: defaults.read_timeout.as_millis() as u64,
        max_resident_bytes: 0,
        debug_verbs: false,
        smoke: false,
        smoke_reconnect: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        let parsed = |name: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--demo" => args.demo = true,
            "--topology" => args.topology = Some(value("--topology")?),
            "--routing" => args.routing = Some(value("--routing")?),
            "--locations" => args.locations = Some(value("--locations")?),
            "--repair" => args.repair = true,
            "--threads" => args.threads = parsed("--threads", value("--threads")?)?,
            "--sat-threads" => args.sat_threads = parsed("--sat-threads", value("--sat-threads")?)?,
            "--cache-size" => args.cache_size = parsed("--cache-size", value("--cache-size")?)?,
            "--journal" => args.journal = Some(PathBuf::from(value("--journal")?)),
            "--max-clients" => args.max_clients = parsed("--max-clients", value("--max-clients")?)?,
            "--max-frame-bytes" => {
                args.max_frame_bytes = parsed("--max-frame-bytes", value("--max-frame-bytes")?)?
            }
            "--read-timeout-ms" => {
                args.read_timeout_ms =
                    parsed("--read-timeout-ms", value("--read-timeout-ms")?)? as u64
            }
            "--max-resident-bytes" => {
                args.max_resident_bytes =
                    parsed("--max-resident-bytes", value("--max-resident-bytes")?)?
            }
            "--debug-verbs" => args.debug_verbs = true,
            "--smoke" => args.smoke = true,
            "--smoke-reconnect" => args.smoke_reconnect = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

impl Args {
    fn config(&self) -> DaemonConfig {
        DaemonConfig {
            threads: self.threads,
            saturation_threads: self.sat_threads,
            cache_size: self.cache_size,
            max_clients: self.max_clients,
            max_frame_bytes: self.max_frame_bytes,
            read_timeout: Duration::from_millis(self.read_timeout_ms),
            max_resident_bytes: self.max_resident_bytes,
            debug_verbs: self.debug_verbs,
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return report_smoke("smoke", smoke());
    }
    if args.smoke_reconnect {
        return report_smoke("smoke-reconnect", smoke_reconnect());
    }
    let Some(socket) = args.socket.clone() else {
        eprintln!("error: --socket is required (or --smoke/--smoke-reconnect)\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let daemon = match &args.journal {
        Some(journal) => match Daemon::with_journal(args.config(), journal) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: journal {}: {e}", journal.display());
                return ExitCode::FAILURE;
            }
        },
        None => Daemon::new(args.config()),
    };
    if daemon.is_loaded() {
        // The journal replay already reconstructed a session (including
        // any preload recorded by an earlier run); preloading again
        // would discard the replayed deltas and watches.
        let status = daemon.replay_status();
        eprintln!(
            "aalwinesd: restored session from journal ({} records{})",
            status.records,
            if status.clean {
                ", clean replay"
            } else {
                ", UNCLEAN replay — see the health verb"
            }
        );
    } else if args.demo {
        daemon.preload_with_spec(aalwines::examples::paper_network(), Some("{\"demo\":true}"));
        eprintln!("aalwinesd: preloaded demo network");
    } else if let (Some(topo), Some(routes)) = (&args.topology, &args.routing) {
        let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
        let loaded = (|| {
            let topo_xml = read(topo)?;
            let routes_xml = read(routes)?;
            let locations = match &args.locations {
                Some(p) => Some(read(p)?),
                None => None,
            };
            aalwines_suite::load_dataplane(
                &topo_xml,
                &routes_xml,
                locations.as_deref(),
                args.repair,
            )
            .map_err(|e| e.to_string())
        })();
        match loaded {
            Ok(net) => {
                let mut spec = JsonObject::new();
                spec.string("topology", topo);
                spec.string("routing", routes);
                if let Some(l) = &args.locations {
                    spec.string("locations", l);
                }
                if args.repair {
                    spec.boolean("repair", true);
                }
                daemon.preload_with_spec(net, Some(&spec.finish()));
                eprintln!("aalwinesd: preloaded dataplane");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("aalwinesd: listening on {}", socket.display());
    match daemon.serve(&socket) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report_smoke(name: &str, result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => {
            println!("aalwinesd {name}: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("aalwinesd {name}: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One scripted client connection for the smoke exercises.
struct SmokeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl SmokeClient {
    fn connect(path: &std::path::Path) -> Result<Self, String> {
        let stream = UnixStream::connect(path).map_err(|e| format!("connect: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        Ok(SmokeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Reconnect with capped exponential backoff — the client half of
    /// crash recovery: a daemon restart leaves a window with no socket.
    fn connect_with_backoff(path: &std::path::Path, budget: Duration) -> Result<Self, String> {
        let start = Instant::now();
        let mut delay = Duration::from_millis(10);
        loop {
            match SmokeClient::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if start.elapsed() >= budget {
                        return Err(format!("reconnect window exhausted: {e}"));
                    }
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(250));
                }
            }
        }
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<Value, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if line.is_empty() {
            return Err("connection closed".to_string());
        }
        parse_json(line.trim_end()).map_err(|e| format!("bad envelope: {e}"))
    }

    /// Send one request and expect the response envelope kind,
    /// returning its payload. Unsolicited `update` / `lint-update`
    /// pushes that arrive first are collected into `updates` as whole
    /// envelopes (so callers can tell the two kinds apart).
    fn roundtrip(
        &mut self,
        request: &str,
        want_kind: &str,
        updates: &mut Vec<Value>,
    ) -> Result<Value, String> {
        self.send(request)?;
        loop {
            let envelope = self.recv()?;
            if envelope.get("schemaVersion").and_then(Value::as_f64) != Some(1.0) {
                return Err(format!("unversioned envelope: {}", envelope.to_json()));
            }
            let kind = envelope
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            let payload = envelope.get("payload").cloned().unwrap_or(Value::Null);
            if kind == "update" || kind == "lint-update" {
                updates.push(envelope);
                continue;
            }
            if kind != want_kind {
                return Err(format!(
                    "{request}: expected kind '{want_kind}', got {}",
                    envelope.to_json()
                ));
            }
            return Ok(payload);
        }
    }
}

/// Strip the volatile timing `stats` from an `answer` payload so two
/// runs of the same deterministic verification compare byte-identical.
fn strip_stats(mut payload: Value) -> Value {
    if let Value::Object(o) = &mut payload {
        o.remove("stats");
    }
    payload
}

/// Self-contained end-to-end exercise over a real Unix socket: load →
/// query → lint → subscribe → delta (with changed-answer push) →
/// stats → shutdown. Used by CI as the daemon smoke job.
fn smoke() -> Result<(), String> {
    let path = std::env::temp_dir().join(format!("aalwinesd-smoke-{}.sock", std::process::id()));
    let daemon = Daemon::new(DaemonConfig {
        threads: 2,
        ..DaemonConfig::default()
    });
    let server = {
        let daemon = daemon.clone();
        let path = path.clone();
        std::thread::spawn(move || daemon.serve(&path))
    };
    // The listener comes up asynchronously; poll for the socket file.
    for _ in 0..200 {
        if path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let mut updates = Vec::new();
    let mut a = SmokeClient::connect(&path)?;
    a.roundtrip(r#"{"verb":"load","demo":true}"#, "loaded", &mut updates)?;

    let q = "<ip> [.#v0] .* [v3#.] <ip> 0";
    let payload = a.roundtrip(
        &format!(r#"{{"verb":"query","query":"{q}"}}"#),
        "answer",
        &mut updates,
    )?;
    if payload.get("result").and_then(Value::as_str) != Some("satisfied") {
        return Err(format!("demo query not satisfied: {}", payload.to_json()));
    }

    // A second, concurrent client sees the same warm session.
    let mut b = SmokeClient::connect(&path)?;
    let stats = b.roundtrip(r#"{"verb":"stats"}"#, "session-stats", &mut updates)?;
    if stats.get("cacheEntries").and_then(Value::as_f64) == Some(0.0) {
        return Err("cache should be warm after the first query".to_string());
    }
    if stats
        .get("bytesResident")
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
        <= 0.0
    {
        return Err("bytesResident missing from stats".to_string());
    }

    let health = b.roundtrip(r#"{"verb":"health"}"#, "health", &mut updates)?;
    if health.get("loaded") != Some(&Value::Bool(true)) {
        return Err(format!("health says unloaded: {}", health.to_json()));
    }
    if health
        .get("lintIncrementalHits")
        .and_then(Value::as_f64)
        .is_none()
    {
        return Err(format!("health lacks lint counters: {}", health.to_json()));
    }

    // The resident lint report is primed at load; the paper network is
    // clean, so the report must exist and hold zero findings.
    let lint = b.roundtrip(r#"{"verb":"lint"}"#, "lint-report", &mut updates)?;
    let clean = matches!(
        lint.get("report").and_then(|r| r.get("findings")),
        Some(Value::Array(items)) if items.is_empty()
    );
    if !clean {
        return Err(format!(
            "demo dataplane should lint clean: {}",
            lint.to_json()
        ));
    }

    a.roundtrip(
        &format!(r#"{{"verb":"subscribe","query":"{q}"}}"#),
        "subscribed",
        &mut updates,
    )?;

    // Take links down until the subscribed answer changes; the daemon
    // must push an `update` to client A.
    let links = {
        let net = aalwines::examples::paper_network();
        net.topology.num_links()
    };
    for l in 0..links {
        let report = a.roundtrip(
            &format!(r#"{{"verb":"delta","delta":{{"kind":"link-down","link":{l}}}}}"#),
            "delta-report",
            &mut updates,
        )?;
        let changed = report
            .get("report")
            .and_then(|r| r.get("changed"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if changed > 0.0 {
            break;
        }
    }
    let kind_count = |k: &str| {
        updates
            .iter()
            .filter(|u| u.get("kind").and_then(Value::as_str) == Some(k))
            .count()
    };
    if kind_count("update") == 0 {
        return Err("no update push received after deltas".to_string());
    }

    a.roundtrip(r#"{"verb":"shutdown"}"#, "bye", &mut updates)?;
    drop(a);
    drop(b);
    server
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("serve: {e}"))?;
    Ok(())
}

/// Crash-recovery exercise: spawn a *child* daemon process with a
/// journal, stream deltas at it, `kill -9` it mid-session, restart it
/// over the same journal, and verify (a) a client reconnects with
/// capped exponential backoff and re-issues its subscription, and
/// (b) the replayed session answers the watched query byte-identically
/// (modulo timing stats) to the pre-crash one, with `health` reporting
/// a clean replay.
fn smoke_reconnect() -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let pid = std::process::id();
    let socket = std::env::temp_dir().join(format!("aalwinesd-reconnect-{pid}.sock"));
    let journal = std::env::temp_dir().join(format!("aalwinesd-reconnect-{pid}.journal"));
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&journal);

    let spawn = || {
        std::process::Command::new(&exe)
            .arg("--socket")
            .arg(&socket)
            .arg("--journal")
            .arg(&journal)
            .arg("--demo")
            .spawn()
            .map_err(|e| format!("spawn: {e}"))
    };
    let budget = Duration::from_secs(10);

    let mut child = spawn()?;
    let result = (|| {
        let mut updates = Vec::new();
        let q = "<ip> [.#v0] .* [v3#.] <ip> 0";
        let mut c = SmokeClient::connect_with_backoff(&socket, budget)?;
        c.roundtrip(
            &format!(r#"{{"verb":"subscribe","query":"{q}"}}"#),
            "subscribed",
            &mut updates,
        )?;
        for l in [0, 2] {
            c.roundtrip(
                &format!(r#"{{"verb":"delta","delta":{{"kind":"link-down","link":{l}}}}}"#),
                "delta-report",
                &mut updates,
            )?;
        }
        let before = strip_stats(c.roundtrip(
            &format!(r#"{{"verb":"query","query":"{q}"}}"#),
            "answer",
            &mut updates,
        )?);

        // The crash: SIGKILL, no warning, mid-stream.
        child.kill().map_err(|e| format!("kill: {e}"))?;
        child.wait().map_err(|e| format!("wait: {e}"))?;
        let _ = std::fs::remove_file(&socket); // the child never got to clean up
        child = spawn()?;

        // The client notices the dead connection and recovers: backoff
        // reconnect, then re-issue the subscription.
        if c.roundtrip(r#"{"verb":"stats"}"#, "session-stats", &mut updates)
            .is_ok()
        {
            return Err("request succeeded over a connection to a killed daemon".to_string());
        }
        let mut c = SmokeClient::connect_with_backoff(&socket, budget)?;
        c.roundtrip(
            &format!(r#"{{"verb":"subscribe","query":"{q}"}}"#),
            "subscribed",
            &mut updates,
        )?;

        let after = strip_stats(c.roundtrip(
            &format!(r#"{{"verb":"query","query":"{q}"}}"#),
            "answer",
            &mut updates,
        )?);
        if before.to_json() != after.to_json() {
            return Err(format!(
                "replayed answer differs:\n  before: {}\n  after:  {}",
                before.to_json(),
                after.to_json()
            ));
        }

        let health = c.roundtrip(r#"{"verb":"health"}"#, "health", &mut updates)?;
        let replay = health
            .get("replay")
            .ok_or("health payload lacks 'replay'")?;
        if replay.get("clean") != Some(&Value::Bool(true)) {
            return Err(format!("replay not clean: {}", health.to_json()));
        }
        if health.get("journal").and_then(|j| j.get("enabled")) != Some(&Value::Bool(true)) {
            return Err(format!("journal not enabled: {}", health.to_json()));
        }

        c.roundtrip(r#"{"verb":"shutdown"}"#, "bye", &mut updates)?;
        Ok(())
    })();

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&journal);
    result
}
