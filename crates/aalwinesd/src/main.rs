//! CLI entry point for `aalwinesd`: bind a Unix socket, optionally
//! preload a dataplane, and serve the NDJSON protocol until `shutdown`.

use aalwinesd::{Daemon, DaemonConfig};
use formats::json::{parse as parse_json, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
aalwinesd — resident what-if verification service (NDJSON over a Unix socket)

USAGE:
    aalwinesd --socket PATH [--demo | --topology T.xml --routing R.xml]
              [--locations L.json] [--repair] [--threads N] [--cache-size N]
    aalwinesd --smoke

OPTIONS:
    --socket PATH      Unix domain socket to listen on
    --demo             preload the paper's example network
    --topology PATH    preload: topology XML
    --routing PATH     preload: routing XML
    --locations PATH   preload: optional router-coordinate JSON
    --repair           drop ill-formed rules while preloading
    --threads N        worker threads for batch requests (default 1)
    --cache-size N     construction-cache capacity (default 256, 0 = off)
    --smoke            run a self-contained end-to-end exercise and exit
";

struct Args {
    socket: Option<PathBuf>,
    demo: bool,
    topology: Option<String>,
    routing: Option<String>,
    locations: Option<String>,
    repair: bool,
    threads: usize,
    cache_size: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        demo: false,
        topology: None,
        routing: None,
        locations: None,
        repair: false,
        threads: 1,
        cache_size: aalwines::DEFAULT_CACHE_SIZE,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--demo" => args.demo = true,
            "--topology" => args.topology = Some(value("--topology")?),
            "--routing" => args.routing = Some(value("--routing")?),
            "--locations" => args.locations = Some(value("--locations")?),
            "--repair" => args.repair = true,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--cache-size" => {
                args.cache_size = value("--cache-size")?
                    .parse()
                    .map_err(|e| format!("--cache-size: {e}"))?
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match smoke() {
            Ok(()) => {
                println!("aalwinesd smoke: OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aalwinesd smoke: FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(socket) = args.socket.clone() else {
        eprintln!("error: --socket is required (or --smoke)\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let daemon = Daemon::new(DaemonConfig {
        threads: args.threads,
        cache_size: args.cache_size,
    });
    if args.demo {
        daemon.preload(aalwines::examples::paper_network());
        eprintln!("aalwinesd: preloaded demo network");
    } else if let (Some(topo), Some(routes)) = (&args.topology, &args.routing) {
        let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
        let loaded = (|| {
            let topo = read(topo)?;
            let routes = read(routes)?;
            let locations = match &args.locations {
                Some(p) => Some(read(p)?),
                None => None,
            };
            aalwines_suite::load_dataplane(&topo, &routes, locations.as_deref(), args.repair)
                .map_err(|e| e.to_string())
        })();
        match loaded {
            Ok(net) => {
                daemon.preload(net);
                eprintln!("aalwinesd: preloaded dataplane");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("aalwinesd: listening on {}", socket.display());
    match daemon.serve(&socket) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One scripted client connection for the smoke exercise.
struct SmokeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl SmokeClient {
    fn connect(path: &std::path::Path) -> Result<Self, String> {
        let stream = UnixStream::connect(path).map_err(|e| format!("connect: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        Ok(SmokeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<Value, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if line.is_empty() {
            return Err("connection closed".to_string());
        }
        parse_json(line.trim_end()).map_err(|e| format!("bad envelope: {e}"))
    }

    /// Send one request and expect the response envelope kind,
    /// returning its payload. Unsolicited `update` pushes that arrive
    /// first are collected into `updates`.
    fn roundtrip(
        &mut self,
        request: &str,
        want_kind: &str,
        updates: &mut Vec<Value>,
    ) -> Result<Value, String> {
        self.send(request)?;
        loop {
            let envelope = self.recv()?;
            if envelope.get("schemaVersion").and_then(Value::as_f64) != Some(1.0) {
                return Err(format!("unversioned envelope: {}", envelope.to_json()));
            }
            let kind = envelope
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            let payload = envelope.get("payload").cloned().unwrap_or(Value::Null);
            if kind == "update" {
                updates.push(payload);
                continue;
            }
            if kind != want_kind {
                return Err(format!(
                    "{request}: expected kind '{want_kind}', got {}",
                    envelope.to_json()
                ));
            }
            return Ok(payload);
        }
    }
}

/// Self-contained end-to-end exercise over a real Unix socket: load →
/// query → subscribe → delta (with changed-answer push) → stats →
/// shutdown. Used by CI as the daemon smoke job.
fn smoke() -> Result<(), String> {
    let path = std::env::temp_dir().join(format!("aalwinesd-smoke-{}.sock", std::process::id()));
    let daemon = Daemon::new(DaemonConfig {
        threads: 2,
        cache_size: aalwines::DEFAULT_CACHE_SIZE,
    });
    let server = {
        let daemon = daemon.clone();
        let path = path.clone();
        std::thread::spawn(move || daemon.serve(&path))
    };
    // The listener comes up asynchronously; poll for the socket file.
    for _ in 0..200 {
        if path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let mut updates = Vec::new();
    let mut a = SmokeClient::connect(&path)?;
    a.roundtrip(r#"{"verb":"load","demo":true}"#, "loaded", &mut updates)?;

    let q = "<ip> [.#v0] .* [v3#.] <ip> 0";
    let payload = a.roundtrip(
        &format!(r#"{{"verb":"query","query":"{q}"}}"#),
        "answer",
        &mut updates,
    )?;
    if payload.get("result").and_then(Value::as_str) != Some("satisfied") {
        return Err(format!("demo query not satisfied: {}", payload.to_json()));
    }

    // A second, concurrent client sees the same warm session.
    let mut b = SmokeClient::connect(&path)?;
    let stats = b.roundtrip(r#"{"verb":"stats"}"#, "session-stats", &mut updates)?;
    if stats.get("cacheEntries").and_then(Value::as_f64) == Some(0.0) {
        return Err("cache should be warm after the first query".to_string());
    }
    if stats
        .get("bytesResident")
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
        <= 0.0
    {
        return Err("bytesResident missing from stats".to_string());
    }

    a.roundtrip(
        &format!(r#"{{"verb":"subscribe","query":"{q}"}}"#),
        "subscribed",
        &mut updates,
    )?;

    // Take links down until the subscribed answer changes; the daemon
    // must push an `update` to client A.
    let links = {
        let net = aalwines::examples::paper_network();
        net.topology.num_links()
    };
    for l in 0..links {
        let report = a.roundtrip(
            &format!(r#"{{"verb":"delta","delta":{{"kind":"link-down","link":{l}}}}}"#),
            "delta-report",
            &mut updates,
        )?;
        let changed = report
            .get("report")
            .and_then(|r| r.get("changed"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if changed > 0.0 {
            break;
        }
    }
    if updates.is_empty() {
        return Err("no update push received after deltas".to_string());
    }

    a.roundtrip(r#"{"verb":"shutdown"}"#, "bye", &mut updates)?;
    drop(a);
    drop(b);
    server
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("serve: {e}"))?;
    Ok(())
}
