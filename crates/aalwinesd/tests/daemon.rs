//! End-to-end exercise of `aalwinesd` over a real Unix domain socket:
//! concurrent clients sharing one warm session, footprint-scoped delta
//! invalidation (asserted via the report counters), changed-answer
//! pushes to subscribers, and incremental answers matching a cold
//! rebuild of the mutated dataplane.

use aalwinesd::{Daemon, DaemonConfig};
use formats::json::{parse as parse_json, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

const DEMO_QUERIES: [&str; 4] = [
    "<ip> [.#v0] .* [v3#.] <ip> 0",
    "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
    "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
    "<ip> [.#v3] .* [v0#.] <ip> 2",
];

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    /// Unsolicited `update` payloads received while waiting for
    /// responses.
    updates: Vec<Value>,
}

impl Client {
    fn connect(path: &Path) -> Client {
        let stream = UnixStream::connect(path).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
            updates: Vec::new(),
        }
    }

    /// Send a request and return the payload of the response envelope,
    /// asserting its kind. `update` pushes arriving first are stashed.
    fn roundtrip(&mut self, request: &str, want_kind: &str) -> Value {
        writeln!(self.writer, "{request}").expect("send");
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("recv");
            assert!(!line.is_empty(), "connection closed during {request}");
            let envelope = parse_json(line.trim_end()).expect("envelope JSON");
            assert_eq!(
                envelope.get("schemaVersion").and_then(Value::as_f64),
                Some(1.0),
                "unversioned envelope: {line}"
            );
            let kind = envelope.get("kind").and_then(Value::as_str).unwrap();
            let payload = envelope.get("payload").cloned().unwrap();
            if kind == "update" {
                self.updates.push(payload);
                continue;
            }
            assert_eq!(kind, want_kind, "{request} answered {line}");
            return payload;
        }
    }
}

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aalwinesd-test-{}-{tag}.sock", std::process::id()))
}

fn start(tag: &str) -> (Daemon, PathBuf, std::thread::JoinHandle<()>) {
    let path = socket_path(tag);
    let daemon = Daemon::new(DaemonConfig {
        threads: 2,
        ..DaemonConfig::default()
    });
    daemon.preload(aalwines::examples::paper_network());
    let server = {
        let daemon = daemon.clone();
        let path = path.clone();
        std::thread::spawn(move || daemon.serve(&path).expect("serve"))
    };
    for _ in 0..400 {
        if path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(path.exists(), "daemon never bound {}", path.display());
    (daemon, path, server)
}

fn result_of(payload: &Value) -> String {
    payload
        .get("result")
        .and_then(Value::as_str)
        .expect("answer payload has a result")
        .to_string()
}

#[test]
fn concurrent_clients_deltas_and_pushes_end_to_end() {
    let (_daemon, path, server) = start("e2e");

    // ---- two concurrent clients fan queries at the warm session -----
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&path);
                let mut results = Vec::new();
                for q in DEMO_QUERIES {
                    let payload =
                        c.roundtrip(&format!(r#"{{"verb":"query","query":"{q}"}}"#), "answer");
                    results.push((w, q, result_of(&payload)));
                }
                results
            })
        })
        .collect();
    let mut results = Vec::new();
    for w in workers {
        results.extend(w.join().expect("worker"));
    }
    // Both clients saw the same verdict per query.
    for q in DEMO_QUERIES {
        let verdicts: Vec<&String> = results
            .iter()
            .filter(|(_, text, _)| *text == q)
            .map(|(_, _, v)| v)
            .collect();
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0], verdicts[1], "{q}");
    }

    let mut a = Client::connect(&path);
    let stats = a.roundtrip(r#"{"verb":"stats"}"#, "session-stats");
    let cached = stats
        .get("cacheEntries")
        .and_then(Value::as_f64)
        .expect("cacheEntries") as usize;
    assert!(cached > 0, "session must be warm after the query fan-out");
    assert!(
        stats
            .get("bytesResident")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );

    // ---- subscribe, then a delta that changes the answer ------------
    let q0 = DEMO_QUERIES[0];
    let sub = a.roundtrip(
        &format!(r#"{{"verb":"subscribe","query":"{q0}"}}"#),
        "subscribed",
    );
    assert_eq!(
        result_of(sub.get("answer").expect("initial answer")),
        "satisfied"
    );

    // Take down e7 (v3 -> x_out, index 7): the egress of every
    // satisfied demo path, so q0 must flip and a push must arrive.
    let report = a.roundtrip(
        r#"{"verb":"delta","delta":{"kind":"link-down","link":7}}"#,
        "delta-report",
    );
    let counters = report.get("report").expect("report");
    assert_eq!(counters.get("applied"), Some(&Value::Bool(true)));
    let invalidated = counters.get("invalidated").and_then(Value::as_f64).unwrap() as usize;
    let retained = counters.get("retained").and_then(Value::as_f64).unwrap() as usize;
    // Invalidation is exact: every cached artifact is either dropped
    // (footprint intersects the delta) or retained — never rebuilt "to
    // be safe".
    assert_eq!(
        invalidated + retained,
        cached,
        "counters must partition the warm cache"
    );
    assert!(invalidated > 0, "downing the egress must invalidate");

    // The push arrived on the subscriber's connection (it may precede
    // the delta-report; roundtrip stashes it either way — poll one more
    // response if needed).
    if a.updates.is_empty() {
        a.roundtrip(r#"{"verb":"stats"}"#, "session-stats");
    }
    assert!(!a.updates.is_empty(), "subscriber got no update push");
    let update = &a.updates[0];
    assert_eq!(update.get("query").and_then(Value::as_str), Some(q0));
    assert_ne!(
        result_of(update.get("answer").expect("pushed answer")),
        "satisfied",
        "severed egress cannot stay satisfied"
    );

    // ---- incremental answers equal a cold rebuild -------------------
    // Rebuild the mutated dataplane independently and compare verdicts.
    let mut cold_session = aalwines::Session::open(aalwines::examples::paper_network());
    cold_session.apply_delta(&aalwines::Delta::LinkDown(netmodel::LinkId(7)));
    let cold_net = cold_session.network().clone();
    for q in DEMO_QUERIES {
        let warm = a.roundtrip(&format!(r#"{{"verb":"query","query":"{q}"}}"#), "answer");
        let parsed = query::parse_query(q).unwrap();
        let cold = aalwines::Engine::verify(
            &aalwines::Verifier::new(&cold_net),
            &parsed,
            &aalwines::VerifyOptions::new(),
        );
        let cold_result = match &cold.outcome {
            aalwines::Outcome::Satisfied(_) => "satisfied",
            aalwines::Outcome::Unsatisfied => "unsatisfied",
            aalwines::Outcome::Inconclusive => "inconclusive",
            aalwines::Outcome::Aborted(_) => "aborted",
            aalwines::Outcome::Error(_) => "error",
        };
        assert_eq!(result_of(&warm), cold_result, "{q}");
    }

    // ---- shutdown ---------------------------------------------------
    a.roundtrip(r#"{"verb":"shutdown"}"#, "bye");
    server.join().expect("server thread");
    assert!(!path.exists(), "socket file must be cleaned up");
}

#[test]
fn link_up_restores_subscribed_answer() {
    let (_daemon, path, server) = start("restore");
    let mut c = Client::connect(&path);
    let q0 = DEMO_QUERIES[0];
    let sub = c.roundtrip(
        &format!(r#"{{"verb":"subscribe","query":"{q0}"}}"#),
        "subscribed",
    );
    assert_eq!(result_of(sub.get("answer").unwrap()), "satisfied");

    c.roundtrip(
        r#"{"verb":"delta","delta":{"kind":"link-down","link":7}}"#,
        "delta-report",
    );
    let up = c.roundtrip(
        r#"{"verb":"delta","delta":{"kind":"link-up","link":7}}"#,
        "delta-report",
    );
    assert_eq!(
        up.get("report").and_then(|r| r.get("applied")),
        Some(&Value::Bool(true))
    );
    // Down then up flips the answer twice; the latest push must be
    // satisfied again.
    assert!(c.updates.len() >= 2, "expected pushes for both flips");
    let last = c.updates.last().unwrap();
    assert_eq!(result_of(last.get("answer").unwrap()), "satisfied");

    c.roundtrip(r#"{"verb":"shutdown"}"#, "bye");
    server.join().expect("server thread");
}
