//! Overload and degradation behavior over a real socket: admission
//! control (`busy`), memory-pressure shedding and subscription refusal,
//! the `reset` push on reload, the panic supervisor, and the
//! `link-up`-on-a-live-link error report.

use aalwinesd::{Daemon, DaemonConfig};
use formats::json::{parse as parse_json, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "aalwinesd-robust-{}-{tag}.sock",
        std::process::id()
    ))
}

fn start(tag: &str, config: DaemonConfig) -> (Daemon, PathBuf, std::thread::JoinHandle<()>) {
    let path = socket_path(tag);
    let daemon = Daemon::new(config);
    daemon.preload(aalwines::examples::paper_network());
    let server = {
        let daemon = daemon.clone();
        let path = path.clone();
        std::thread::spawn(move || daemon.serve(&path).expect("serve"))
    };
    for _ in 0..400 {
        if path.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(path.exists(), "daemon never bound {}", path.display());
    (daemon, path, server)
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(path: &Path) -> Client {
        let stream = UnixStream::connect(path).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, request: &str) {
        writeln!(self.writer, "{request}").expect("send");
    }

    /// Next envelope on the connection (kind, payload); None on EOF.
    fn next_envelope(&mut self) -> Option<(String, Value)> {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        if line.is_empty() {
            return None;
        }
        let envelope = parse_json(line.trim_end()).expect("envelope JSON");
        assert_eq!(
            envelope.get("schemaVersion").and_then(Value::as_f64),
            Some(1.0),
            "unversioned envelope: {line}"
        );
        Some((
            envelope
                .get("kind")
                .and_then(Value::as_str)
                .unwrap()
                .to_string(),
            envelope.get("payload").cloned().unwrap(),
        ))
    }

    fn roundtrip(&mut self, request: &str, want_kind: &str) -> Value {
        self.send(request);
        let (kind, payload) = self.next_envelope().expect("response");
        assert_eq!(kind, want_kind, "{request} answered kind {kind}");
        payload
    }
}

fn shutdown(mut c: Client, server: std::thread::JoinHandle<()>) {
    c.roundtrip(r#"{"verb":"shutdown"}"#, "bye");
    server.join().expect("server thread");
}

#[test]
fn excess_connections_get_busy_not_a_queue() {
    let (_d, path, server) = start(
        "busy",
        DaemonConfig {
            max_clients: 1,
            ..DaemonConfig::default()
        },
    );
    let mut a = Client::connect(&path);
    a.roundtrip(r#"{"verb":"stats"}"#, "session-stats"); // a is admitted and live

    let mut b = Client::connect(&path);
    let (kind, payload) = b.next_envelope().expect("busy envelope");
    assert_eq!(kind, "busy");
    assert_eq!(payload.get("maxClients").and_then(Value::as_f64), Some(1.0));
    assert!(
        b.next_envelope().is_none(),
        "busy connection must be closed"
    );

    // The admitted client is unaffected.
    a.roundtrip(r#"{"verb":"stats"}"#, "session-stats");
    shutdown(a, server);
}

#[test]
fn memory_pressure_refuses_subscriptions_but_serves_queries() {
    let (_d, path, server) = start(
        "pressure",
        DaemonConfig {
            max_resident_bytes: 1, // precomp alone exceeds this
            ..DaemonConfig::default()
        },
    );
    let mut c = Client::connect(&path);

    // Degraded, not dead: plain queries still answer.
    let q = "<ip> [.#v0] .* [v3#.] <ip> 0";
    let payload = c.roundtrip(&format!(r#"{{"verb":"query","query":"{q}"}}"#), "answer");
    assert_eq!(
        payload.get("result").and_then(Value::as_str),
        Some("satisfied")
    );

    // One delta re-runs budget enforcement over the protocol.
    c.roundtrip(
        r#"{"verb":"delta","delta":{"kind":"link-down","link":0}}"#,
        "delta-report",
    );
    let health = c.roundtrip(r#"{"verb":"health"}"#, "health");
    assert_eq!(
        health.get("pressure").and_then(Value::as_str),
        Some("refusing"),
        "{}",
        health.to_json()
    );

    let refused = c.roundtrip(&format!(r#"{{"verb":"subscribe","query":"{q}"}}"#), "error");
    assert!(
        refused
            .get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("refusing new subscriptions"),
        "{}",
        refused.to_json()
    );
    shutdown(c, server);
}

#[test]
fn budget_shedding_keeps_the_cache_within_bounds() {
    // A budget big enough for the precomp but far too small for a warm
    // cache: every query evicts back down, health reports "shedding",
    // and subscriptions stay admitted.
    let net = aalwines::examples::paper_network();
    let precomp_floor = {
        let s = aalwines::Session::open(net.clone());
        s.bytes_resident()
    };
    let (daemon, path, server) = start(
        "shed",
        DaemonConfig {
            max_resident_bytes: precomp_floor + 2048,
            ..DaemonConfig::default()
        },
    );
    let mut c = Client::connect(&path);
    for q in [
        "<ip> [.#v0] .* [v3#.] <ip> 0",
        "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
        "<ip> [.#v3] .* [v0#.] <ip> 2",
    ] {
        c.roundtrip(
            &format!(r#"{{"verb":"subscribe","query":"{q}"}}"#),
            "subscribed",
        );
    }
    let health = c.roundtrip(r#"{"verb":"health"}"#, "health");
    assert_eq!(
        health.get("pressure").and_then(Value::as_str),
        Some("shedding"),
        "{}",
        health.to_json()
    );
    assert!(health.get("shedEvents").and_then(Value::as_f64).unwrap() >= 1.0);
    assert!(
        health.get("residentBytes").and_then(Value::as_f64).unwrap()
            <= (precomp_floor + 2048) as f64
    );
    let _ = daemon;
    shutdown(c, server);
}

#[test]
fn load_pushes_reset_to_existing_subscribers() {
    let (_d, path, server) = start("reset", DaemonConfig::default());
    let mut sub = Client::connect(&path);
    sub.roundtrip(
        r#"{"verb":"subscribe","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
        "subscribed",
    );
    let mut loader = Client::connect(&path);
    loader.roundtrip(r#"{"verb":"load","demo":true}"#, "loaded");

    let (kind, payload) = sub.next_envelope().expect("reset push");
    assert_eq!(kind, "reset");
    assert!(payload
        .get("reason")
        .and_then(Value::as_str)
        .unwrap()
        .contains("re-subscribe"));
    // The old watch is gone: a fresh subscribe starts at index 0 again.
    let again = sub.roundtrip(
        r#"{"verb":"subscribe","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#,
        "subscribed",
    );
    assert_eq!(again.get("index").and_then(Value::as_f64), Some(0.0));
    shutdown(loader, server);
}

#[test]
fn a_panicking_handler_costs_one_connection_not_the_daemon() {
    let (_d, path, server) = start(
        "panic",
        DaemonConfig {
            debug_verbs: true,
            ..DaemonConfig::default()
        },
    );
    let mut victim = Client::connect(&path);
    let payload = victim.roundtrip(r#"{"verb":"debug-panic"}"#, "error");
    assert!(
        payload
            .get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("panicked"),
        "{}",
        payload.to_json()
    );
    assert!(
        victim.next_envelope().is_none(),
        "panicked connection must be closed"
    );

    // The daemon survives, serves new clients, and reports the panic.
    let mut c = Client::connect(&path);
    c.roundtrip(r#"{"verb":"stats"}"#, "session-stats");
    let health = c.roundtrip(r#"{"verb":"health"}"#, "health");
    assert!(
        health
            .get("lastError")
            .and_then(Value::as_str)
            .unwrap()
            .contains("panicked"),
        "{}",
        health.to_json()
    );
    shutdown(c, server);
}

#[test]
fn debug_verbs_stay_disabled_by_default() {
    let (_d, path, server) = start("nodebug", DaemonConfig::default());
    let mut c = Client::connect(&path);
    let payload = c.roundtrip(r#"{"verb":"debug-panic"}"#, "error");
    assert!(payload
        .get("message")
        .and_then(Value::as_str)
        .unwrap()
        .contains("unknown verb"));
    shutdown(c, server);
}

#[test]
fn link_up_on_a_live_link_reports_not_applied_with_reason() {
    let (_d, path, server) = start("linkup", DaemonConfig::default());
    let mut c = Client::connect(&path);
    let payload = c.roundtrip(
        r#"{"verb":"delta","delta":{"kind":"link-up","link":3}}"#,
        "delta-report",
    );
    let report = payload.get("report").expect("report");
    assert_eq!(report.get("applied"), Some(&Value::Bool(false)));
    assert!(
        report
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("not down"),
        "{}",
        payload.to_json()
    );
    shutdown(c, server);
}
