//! The crash-replay property, exercised against the real binary:
//! `kill -9` a journaled daemon at a random point in a delta storm,
//! restart it over the same journal, and the restarted daemon must
//! answer every probe query **byte-identically** (modulo volatile
//! timing stats) to a cold rebuild of the exact operation prefix the
//! journal preserved — with `health` reporting a clean replay.
//!
//! The storm is blasted without waiting for acknowledgements, so the
//! SIGKILL genuinely races the append path: the journal may end in a
//! torn record, and the preserved prefix is discovered from the
//! journal itself (it is the single source of truth), not assumed.

use aalwinesd::{Daemon, DaemonConfig, Journal, JournalOp};
use detrand::DetRng;
use formats::json::{parse as parse_json, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROBES: [&str; 3] = [
    "<ip> [.#v0] .* [v3#.] <ip> 0",
    "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
    "<ip> [.#v3] .* [v0#.] <ip> 2",
];

fn temp(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "aalwinesd-crash-{}-{tag}.{ext}",
        std::process::id()
    ))
}

fn spawn_daemon(socket: &Path, journal: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_aalwinesd"))
        .arg("--socket")
        .arg(socket)
        .arg("--journal")
        .arg(journal)
        .arg("--demo")
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon")
}

fn connect_with_backoff(path: &Path) -> UnixStream {
    let start = Instant::now();
    let mut delay = Duration::from_millis(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) => {
                assert!(
                    start.elapsed() < Duration::from_secs(20),
                    "daemon never came up on {}: {e}",
                    path.display()
                );
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(250));
            }
        }
    }
}

/// Send `request` and return the first non-`update` payload.
fn roundtrip(reader: &mut BufReader<UnixStream>, writer: &mut UnixStream, request: &str) -> Value {
    writeln!(writer, "{request}").expect("send");
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "connection closed during {request}");
        let envelope = parse_json(line.trim_end()).expect("envelope JSON");
        if envelope.get("kind").and_then(Value::as_str) == Some("update") {
            continue;
        }
        return envelope.get("payload").cloned().unwrap();
    }
}

/// Answer payload with the volatile timing `stats` removed; everything
/// left is deterministic, so equality means byte-identical rendering.
fn stripped_answer(reader: &mut BufReader<UnixStream>, writer: &mut UnixStream, q: &str) -> String {
    let mut payload = roundtrip(
        reader,
        writer,
        &format!(r#"{{"verb":"query","query":"{q}"}}"#),
    );
    if let Value::Object(o) = &mut payload {
        o.remove("stats");
    }
    payload.to_json()
}

/// One seeded crash-replay round. Returns the number of delta records
/// the journal preserved (so the caller can check the storm was long
/// enough to be interesting).
fn crash_round(seed: u64) -> usize {
    let tag = format!("s{seed}");
    let socket = temp(&tag, "sock");
    let journal = temp(&tag, "journal");
    let journal_copy = temp(&tag, "journal-copy");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&journal);

    let mut rng = DetRng::seed_from_u64(seed);
    let mut child = spawn_daemon(&socket, &journal);
    let stream = connect_with_backoff(&socket);
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    roundtrip(
        &mut reader,
        &mut writer,
        &format!(r#"{{"verb":"subscribe","query":"{}"}}"#, PROBES[0]),
    );

    // ---- the storm: ≥50 deltas, no waiting for acks ------------------
    let links = aalwines::examples::paper_network().topology.num_links();
    let steps = rng.gen_range(50usize..120);
    for _ in 0..steps {
        let link = rng.gen_range(0u64..links as u64);
        let kind = if rng.gen_bool(0.4) {
            "link-up"
        } else {
            "link-down"
        };
        let req = format!(r#"{{"verb":"delta","delta":{{"kind":"{kind}","link":{link}}}}}"#);
        if writeln!(writer, "{req}").is_err() {
            break; // the daemon died under us mid-storm: fine, kill below
        }
    }
    let _ = writer.flush();
    // Crash at a random point while the daemon drains the storm.
    std::thread::sleep(Duration::from_millis(rng.gen_range(0u64..80)));
    child.kill().expect("kill -9");
    child.wait().expect("wait");
    let _ = std::fs::remove_file(&socket);
    drop(reader);

    // ---- what did the journal actually preserve? ---------------------
    // A pristine copy for the cold rebuild, taken before anything else
    // reopens (and appends to) the original.
    std::fs::copy(&journal, &journal_copy).expect("copy journal");
    let (_, replay) = Journal::open(&journal_copy).expect("open journal copy");
    assert!(
        replay.clean,
        "a SIGKILL tear must replay clean (dropped {} records)",
        replay.dropped_records
    );
    let delta_records = replay
        .ops
        .iter()
        .filter(|op| matches!(op, JournalOp::Delta { .. }))
        .count();

    // ---- restart over the journal vs. cold rebuild of the prefix -----
    let mut child2 = spawn_daemon(&socket, &journal);
    let stream = connect_with_backoff(&socket);
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    let cold = Daemon::with_journal(DaemonConfig::default(), &journal_copy).expect("cold rebuild");
    assert!(cold.is_loaded(), "journal must preserve the load record");
    let cold_peer = aalwinesd::peer_of(Vec::new());

    for q in PROBES {
        let warm = stripped_answer(&mut reader, &mut writer, q);
        let mut cold_payload =
            parse_json(&cold.handle(&format!(r#"{{"verb":"query","query":"{q}"}}"#), &cold_peer))
                .unwrap()
                .get("payload")
                .cloned()
                .unwrap();
        if let Value::Object(o) = &mut cold_payload {
            o.remove("stats");
        }
        assert_eq!(
            warm,
            cold_payload.to_json(),
            "seed {seed}: replayed answer for {q} diverged from the cold rebuild"
        );
    }

    // ---- health must agree the replay was clean ----------------------
    let health = roundtrip(&mut reader, &mut writer, r#"{"verb":"health"}"#);
    let replay_health = health.get("replay").expect("health.replay");
    assert_eq!(
        replay_health.get("clean"),
        Some(&Value::Bool(true)),
        "seed {seed}: {}",
        health.to_json()
    );
    assert_eq!(
        replay_health.get("records").and_then(Value::as_f64),
        Some(replay.records as f64)
    );

    roundtrip(&mut reader, &mut writer, r#"{"verb":"shutdown"}"#);
    let _ = child2.wait();
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&journal_copy);
    delta_records
}

#[test]
fn killed_daemon_replays_byte_identically_to_a_cold_rebuild() {
    let mut preserved = 0;
    for seed in [7, 1848, 900913] {
        preserved += crash_round(seed);
    }
    // Across the seeds the kill must have landed after real work: if no
    // deltas ever reached the journal the property was tested vacuously.
    assert!(
        preserved >= 50,
        "storms preserved only {preserved} delta records in total"
    );
}
