//! Protocol fuzz: hostile byte streams against a live daemon socket.
//! Whatever arrives — seeded garbage, megabyte lines, truncated
//! frames, interleaved partial writes — every response line must be a
//! well-formed schemaVersion-1 envelope and the daemon must keep
//! serving other clients. The daemon process never exits.

use aalwinesd::{Daemon, DaemonConfig};
use detrand::DetRng;
use formats::json::{parse as parse_json, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aalwinesd-fuzz-{}-{tag}.sock", std::process::id()))
}

fn start(tag: &str, config: DaemonConfig) -> (Daemon, PathBuf, std::thread::JoinHandle<()>) {
    let path = socket_path(tag);
    let daemon = Daemon::new(config);
    daemon.preload(aalwines::examples::paper_network());
    let server = {
        let daemon = daemon.clone();
        let path = path.clone();
        std::thread::spawn(move || daemon.serve(&path).expect("serve"))
    };
    for _ in 0..400 {
        if path.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(path.exists(), "daemon never bound {}", path.display());
    (daemon, path, server)
}

/// Assert every line readable on `stream` until EOF is a well-formed
/// versioned envelope; returns the kinds seen.
fn drain_envelopes(stream: UnixStream) -> Vec<String> {
    let mut kinds = Vec::new();
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        if line.is_empty() {
            continue;
        }
        let envelope =
            parse_json(&line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"));
        assert_eq!(
            envelope.get("schemaVersion").and_then(Value::as_f64),
            Some(1.0),
            "unversioned response: {line}"
        );
        let kind = envelope
            .get("kind")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("kindless response: {line}"))
            .to_string();
        assert!(
            envelope.get("payload").is_some(),
            "payloadless response: {line}"
        );
        kinds.push(kind);
    }
    kinds
}

/// The daemon is still alive iff a fresh client gets real answers.
fn assert_alive(path: &Path) {
    let mut stream = UnixStream::connect(path).expect("daemon gone");
    writeln!(stream, r#"{{"verb":"stats"}}"#).expect("send");
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .expect("recv");
    let envelope = parse_json(line.trim_end()).expect("envelope");
    assert_eq!(
        envelope.get("kind").and_then(Value::as_str),
        Some("session-stats")
    );
}

fn graceful_shutdown(path: &Path, server: std::thread::JoinHandle<()>) {
    let mut stream = UnixStream::connect(path).expect("connect for shutdown");
    writeln!(stream, r#"{{"verb":"shutdown"}}"#).expect("send");
    let _ = drain_envelopes(stream);
    server.join().expect("server thread");
}

#[test]
fn seeded_garbage_lines_answer_structured_errors() {
    let (_d, path, server) = start("garbage", DaemonConfig::default());
    let mut rng = DetRng::seed_from_u64(0xFA22);
    for _ in 0..8 {
        let stream = UnixStream::connect(&path).expect("connect");
        let mut w = stream.try_clone().expect("clone");
        let lines = rng.gen_range(1usize..6);
        for _ in 0..lines {
            let len = rng.gen_range(1usize..2000);
            let mut junk = Vec::with_capacity(len);
            for _ in 0..len {
                // Anything but the frame delimiter.
                let b = rng.gen_range(1u64..256) as u8;
                junk.push(if b == b'\n' { b' ' } else { b });
            }
            w.write_all(&junk).expect("send junk");
            w.write_all(b"\n").expect("send newline");
        }
        w.flush().expect("flush");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let kinds = drain_envelopes(stream);
        assert_eq!(kinds.len(), lines, "one response per garbage line");
        assert!(kinds.iter().all(|k| k == "error"), "{kinds:?}");
    }
    assert_alive(&path);
    graceful_shutdown(&path, server);
}

#[test]
fn a_megabyte_line_is_refused_not_buffered_without_bound() {
    let (_d, path, server) = start("huge", DaemonConfig::default());
    let stream = UnixStream::connect(&path).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    // 1 MiB of 'a' with no newline until the very end — four times the
    // frame cap. The daemon must cut it off mid-stream with an error.
    let chunk = vec![b'a'; 64 * 1024];
    let mut sent = 0usize;
    while sent < 1024 * 1024 {
        if w.write_all(&chunk).is_err() {
            break; // daemon already closed on us: also acceptable
        }
        sent += chunk.len();
    }
    let _ = w.write_all(b"\n");
    let _ = w.flush();
    let kinds = drain_envelopes(stream);
    if let Some(kind) = kinds.first() {
        assert_eq!(kind, "error");
    }
    assert_alive(&path);
    graceful_shutdown(&path, server);
}

#[test]
fn a_truncated_frame_then_eof_is_dropped_quietly() {
    let (_d, path, server) = start("truncated", DaemonConfig::default());
    let stream = UnixStream::connect(&path).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    w.write_all(br#"{"verb":"que"#).expect("send partial");
    w.flush().expect("flush");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let kinds = drain_envelopes(stream);
    assert!(
        kinds.is_empty(),
        "no frame completed, no response: {kinds:?}"
    );
    assert_alive(&path);
    graceful_shutdown(&path, server);
}

#[test]
fn a_stalled_frame_times_out_with_a_structured_error() {
    let (_d, path, server) = start(
        "stalled",
        DaemonConfig {
            read_timeout: Duration::from_millis(300),
            ..DaemonConfig::default()
        },
    );
    let stream = UnixStream::connect(&path).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    w.write_all(br#"{"verb":"stats""#).expect("send partial");
    w.flush().expect("flush");
    // ...and never finish the frame. The daemon must give up on us.
    let mut r = stream.try_clone().expect("clone");
    let mut line = String::new();
    BufReader::new(&mut r).read_line(&mut line).expect("recv");
    let envelope = parse_json(line.trim_end()).expect("envelope");
    assert_eq!(envelope.get("kind").and_then(Value::as_str), Some("error"));
    assert!(
        envelope.to_json().contains("stalled"),
        "unexpected error: {line}"
    );
    // The connection is closed after the error.
    let mut rest = Vec::new();
    let n = r.read_to_end(&mut rest).expect("eof");
    assert_eq!(n, 0, "connection must close after a stall: {rest:?}");
    assert_alive(&path);
    graceful_shutdown(&path, server);
}

#[test]
fn an_idle_subscriber_is_never_timed_out() {
    let (_d, path, server) = start(
        "idle",
        DaemonConfig {
            read_timeout: Duration::from_millis(200),
            ..DaemonConfig::default()
        },
    );
    let stream = UnixStream::connect(&path).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    writeln!(
        w,
        r#"{{"verb":"subscribe","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}}"#
    )
    .expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    assert_eq!(
        parse_json(line.trim_end())
            .unwrap()
            .get("kind")
            .and_then(Value::as_str),
        Some("subscribed")
    );
    // Sit idle for several read-timeouts, then prove the connection
    // still works by receiving a pushed update.
    std::thread::sleep(Duration::from_millis(800));
    let mut other = UnixStream::connect(&path).expect("connect");
    writeln!(
        other,
        r#"{{"verb":"delta","delta":{{"kind":"link-down","link":7}}}}"#
    )
    .expect("send delta");
    let mut pushed = String::new();
    reader.read_line(&mut pushed).expect("recv push");
    assert_eq!(
        parse_json(pushed.trim_end())
            .unwrap()
            .get("kind")
            .and_then(Value::as_str),
        Some("update"),
        "idle subscriber should still receive pushes: {pushed}"
    );
    assert_alive(&path);
    graceful_shutdown(&path, server);
}

#[test]
fn interleaved_partial_writes_from_two_clients_stay_isolated() {
    let (_d, path, server) = start("interleave", DaemonConfig::default());
    let a = UnixStream::connect(&path).expect("connect a");
    let b = UnixStream::connect(&path).expect("connect b");
    let mut wa = a.try_clone().expect("clone");
    let mut wb = b.try_clone().expect("clone");

    // Two valid requests dribbled out in alternating fragments: each
    // connection's framing must be independent of the other's pace.
    let ra = br#"{"verb":"query","query":"<ip> [.#v0] .* [v3#.] <ip> 0"}"#.to_vec();
    let rb = br#"{"verb":"stats"}"#.to_vec();
    let mut rng = DetRng::seed_from_u64(0x1EAF);
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < ra.len() || ib < rb.len() {
        if ia < ra.len() && (ib >= rb.len() || rng.gen_bool(0.6)) {
            let n = (ia + rng.gen_range(1usize..7)).min(ra.len());
            wa.write_all(&ra[ia..n]).expect("send a");
            wa.flush().expect("flush a");
            ia = n;
        } else if ib < rb.len() {
            let n = (ib + rng.gen_range(1usize..4)).min(rb.len());
            wb.write_all(&rb[ib..n]).expect("send b");
            wb.flush().expect("flush b");
            ib = n;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    wa.write_all(b"\n").expect("a newline");
    wb.write_all(b"\n").expect("b newline");
    wa.flush().expect("flush");
    wb.flush().expect("flush");

    let mut line = String::new();
    BufReader::new(a).read_line(&mut line).expect("recv a");
    let va = parse_json(line.trim_end()).expect("a envelope");
    assert_eq!(va.get("kind").and_then(Value::as_str), Some("answer"));

    let mut line = String::new();
    BufReader::new(b).read_line(&mut line).expect("recv b");
    let vb = parse_json(line.trim_end()).expect("b envelope");
    assert_eq!(
        vb.get("kind").and_then(Value::as_str),
        Some("session-stats")
    );

    assert_alive(&path);
    graceful_shutdown(&path, server);
}

#[test]
fn lint_requests_with_seeded_garbage_payloads_never_kill_the_daemon() {
    let (_d, path, server) = start("lint-garbage", DaemonConfig::default());
    let mut rng = DetRng::seed_from_u64(0x11A7);
    for round in 0..6 {
        let stream = UnixStream::connect(&path).expect("connect");
        let mut w = stream.try_clone().expect("clone");
        let mut sent = 0usize;
        for _ in 0..rng.gen_range(2usize..6) {
            // A lint request mangled at random: extra junk fields, junk
            // appended after the object, or the verb buried in noise.
            let mutation = rng.gen_range(0..4usize);
            let line = match mutation {
                0 => r#"{"verb":"lint"}"#.to_string(),
                1 => format!(r#"{{"verb":"lint","junk":{}}}"#, rng.gen_range(0..1000u64)),
                2 => {
                    let mut tail = String::new();
                    for _ in 0..rng.gen_range(1usize..40) {
                        let b = rng.gen_range(33u64..126) as u8 as char;
                        tail.push(if b == '\n' { ' ' } else { b });
                    }
                    format!(r#"{{"verb":"lint"}}{tail}"#)
                }
                _ => format!(r#"{{"lint":"verb","x":{}}}"#, rng.gen_range(0..100u64)),
            };
            w.write_all(line.as_bytes()).expect("send");
            w.write_all(b"\n").expect("newline");
            sent += 1;
        }
        w.flush().expect("flush");
        stream.shutdown(Shutdown::Write).expect("half-close");
        let kinds = drain_envelopes(stream);
        assert_eq!(kinds.len(), sent, "round {round}: one response per line");
        assert!(
            kinds.iter().all(|k| k == "lint-report" || k == "error"),
            "round {round}: {kinds:?}"
        );
    }
    assert_alive(&path);
    graceful_shutdown(&path, server);
}

#[test]
fn lint_on_an_empty_session_answers_a_structured_error() {
    // No preload: the daemon has no dataplane, so `lint` must answer a
    // structured error (not a panic, not a hang) and keep serving.
    let path = socket_path("lint-empty");
    let daemon = Daemon::new(DaemonConfig::default());
    let server = {
        let daemon = daemon.clone();
        let path = path.clone();
        std::thread::spawn(move || daemon.serve(&path).expect("serve"))
    };
    for _ in 0..400 {
        if path.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let stream = UnixStream::connect(&path).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    writeln!(w, r#"{{"verb":"lint"}}"#).expect("send");
    writeln!(w, r#"{{"verb":"lint"}}"#).expect("send again");
    w.flush().expect("flush");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let kinds = drain_envelopes(stream);
    assert_eq!(kinds, vec!["error", "error"]);
    // Loading over the same daemon then linting works.
    let stream = UnixStream::connect(&path).expect("reconnect");
    let mut w = stream.try_clone().expect("clone");
    writeln!(w, r#"{{"verb":"load","demo":true}}"#).expect("send load");
    writeln!(w, r#"{{"verb":"lint"}}"#).expect("send lint");
    w.flush().expect("flush");
    stream.shutdown(Shutdown::Write).expect("half-close");
    assert_eq!(drain_envelopes(stream), vec!["loaded", "lint-report"]);
    graceful_shutdown(&path, server);
}

#[test]
fn lint_interleaved_with_deltas_from_a_second_client_stays_consistent() {
    let (_d, path, server) = start("lint-interleave", DaemonConfig::default());
    let a = UnixStream::connect(&path).expect("connect a");
    let b = UnixStream::connect(&path).expect("connect b");
    let mut wa = a.try_clone().expect("clone a");
    let mut wb = b.try_clone().expect("clone b");
    let mut ra = BufReader::new(a.try_clone().expect("clone"));
    let mut rb = BufReader::new(b.try_clone().expect("clone"));

    let recv = |r: &mut BufReader<UnixStream>| -> String {
        let mut line = String::new();
        r.read_line(&mut line).expect("recv");
        let envelope = parse_json(line.trim_end()).expect("envelope");
        assert_eq!(
            envelope.get("schemaVersion").and_then(Value::as_f64),
            Some(1.0),
            "unversioned: {line}"
        );
        envelope
            .get("kind")
            .and_then(Value::as_str)
            .expect("kind")
            .to_string()
    };

    let mut rng = DetRng::seed_from_u64(0xD317);
    for _ in 0..16 {
        // Client B mutates (sometimes nonsensically), client A lints
        // right behind it. Both connections must see only well-formed
        // envelopes of the expected kinds, in request order.
        let link = rng.gen_range(0u64..12); // some indices out of range
        let kind = if rng.gen_bool(0.5) {
            "link-down"
        } else {
            "link-up"
        };
        writeln!(
            wb,
            r#"{{"verb":"delta","delta":{{"kind":"{kind}","link":{link}}}}}"#
        )
        .expect("send delta");
        wb.flush().expect("flush b");
        let kb = recv(&mut rb);
        assert!(kb == "delta-report" || kb == "error", "{kb}");

        writeln!(wa, r#"{{"verb":"lint"}}"#).expect("send lint");
        wa.flush().expect("flush a");
        assert_eq!(recv(&mut ra), "lint-report");
    }
    assert_alive(&path);
    graceful_shutdown(&path, server);
}
