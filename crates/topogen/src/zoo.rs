//! Synthetic Internet-Topology-Zoo-like topologies.
//!
//! The Topology Zoo is a collection of real ISP/NREN backbone maps; its
//! networks are sparse (average degree ≈ 2–4), geographically embedded,
//! and connected. This generator reproduces those structural properties
//! with a seeded Waxman-style geometric model: routers are placed in a
//! coordinate box, a random spanning tree guarantees connectivity, and
//! extra edges are added with probability decaying in distance. Every
//! physical edge becomes two directed links with interface names and a
//! kilometre distance, giving the `Distance` quantity real units.

use detrand::DetRng;
use netmodel::Topology;

/// Parameters of the generator.
#[derive(Clone, Debug)]
pub struct ZooConfig {
    /// Number of routers.
    pub routers: u32,
    /// Target average *undirected* degree (the Zoo hovers around 2–4).
    pub avg_degree: f64,
    /// RNG seed: same seed, same topology.
    pub seed: u64,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            routers: 84, // the paper's reported Zoo average
            avg_degree: 3.0,
            seed: 0xAA1,
        }
    }
}

/// Generate a Zoo-like topology.
///
/// Router names are `R0`, `R1`, …; each physical edge `u–v` becomes the
/// directed links `u→v` and `v→u` with interfaces named after the peer
/// (`to_R7`).
pub fn zoo_like(cfg: &ZooConfig) -> Topology {
    assert!(cfg.routers >= 2, "need at least two routers");
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let n = cfg.routers as usize;

    // Place routers in a rough European bounding box.
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(36.0..64.0),  // latitude
                rng.gen_range(-10.0..30.0), // longitude
            )
        })
        .collect();

    let mut topo = Topology::new();
    for (i, c) in coords.iter().enumerate() {
        topo.add_router(&format!("R{i}"), Some(*c));
    }

    // Undirected edge set: spanning tree first (connectivity), then
    // Waxman-style distance-biased extras up to the target degree. A
    // normalized membership set keeps duplicate checks O(1) — the old
    // linear scan made thousand-router scale-tier generation O(E²).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut edge_set: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let norm = |a: usize, b: usize| if a <= b { (a, b) } else { (b, a) };
    for i in 1..n {
        // Attach each router to a random earlier one, biased to the
        // geographically closest few — mimics incremental backbone growth.
        let mut best: Vec<usize> = (0..i).collect();
        best.sort_by(|&a, &b| {
            dist(coords[a], coords[i])
                .partial_cmp(&dist(coords[b], coords[i]))
                .unwrap()
        });
        let pick = best[rng.gen_range(0..best.len().min(3))];
        edges.push((pick, i));
        edge_set.insert(norm(pick, i));
    }
    let target_edges = ((cfg.avg_degree * n as f64) / 2.0).round() as usize;
    let max_d = 4000.0; // km scale for the decay
    let mut guard = 0;
    while edges.len() < target_edges && guard < 50 * target_edges {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || edge_set.contains(&norm(a, b)) {
            continue;
        }
        let d = dist(coords[a], coords[b]);
        let p = (-d / (0.3 * max_d)).exp();
        if rng.gen_bool(p.clamp(0.001, 1.0)) {
            edges.push((a, b));
            edge_set.insert(norm(a, b));
        }
    }

    for &(a, b) in &edges {
        let (ra, rb) = (
            topo.router_by_name(&format!("R{a}")).unwrap(),
            topo.router_by_name(&format!("R{b}")).unwrap(),
        );
        let km = topo.geo_distance(ra, rb).unwrap_or(1.0).max(1.0) as u64;
        topo.add_link(ra, &format!("to_R{b}"), rb, &format!("to_R{a}"), km);
        topo.add_link(rb, &format!("to_R{a}"), ra, &format!("to_R{b}"), km);
    }
    topo
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    // Rough planar km distance; only used for edge sampling.
    let dy = (a.0 - b.0) * 111.0;
    let dx = (a.1 - b.1) * 70.0;
    (dx * dx + dy * dy).sqrt()
}

/// The size distribution used for the Figure-4 sweep: a spread of
/// networks from small to the Zoo's largest (240 routers), averaging
/// near the reported 84.
pub fn figure4_sizes(count: usize) -> Vec<u32> {
    // Log-spaced between 16 and 240.
    (0..count)
        .map(|i| {
            let f = i as f64 / (count.max(2) - 1) as f64;
            (16.0 * (240.0f64 / 16.0).powf(f)).round() as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = zoo_like(&ZooConfig::default());
        let b = zoo_like(&ZooConfig::default());
        assert_eq!(a.num_routers(), b.num_routers());
        assert_eq!(a.num_links(), b.num_links());
        for l in a.links() {
            assert_eq!(a.link_name(l), b.link_name(l));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = zoo_like(&ZooConfig::default());
        let b = zoo_like(&ZooConfig {
            seed: 7,
            ..ZooConfig::default()
        });
        // Link sets almost surely differ.
        let names_a: Vec<String> = a.links().map(|l| a.link_name(l)).collect();
        let names_b: Vec<String> = b.links().map(|l| b.link_name(l)).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn is_connected() {
        let topo = zoo_like(&ZooConfig {
            routers: 60,
            avg_degree: 2.5,
            seed: 3,
        });
        // Undirected BFS from router 0.
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack = vec![netmodel::RouterId(0)];
        seen.insert(0);
        while let Some(r) = stack.pop() {
            for &l in topo.links_from(r) {
                let d = topo.dst(l);
                if seen.insert(d.0) {
                    stack.push(d);
                }
            }
        }
        assert_eq!(seen.len() as u32, topo.num_routers());
    }

    #[test]
    fn links_come_in_directed_pairs() {
        let topo = zoo_like(&ZooConfig::default());
        assert_eq!(topo.num_links() % 2, 0);
        for l in topo.links() {
            let rev = topo
                .links()
                .find(|&m| topo.src(m) == topo.dst(l) && topo.dst(m) == topo.src(l));
            assert!(rev.is_some(), "missing reverse of {}", topo.link_name(l));
        }
    }

    #[test]
    fn average_degree_in_zoo_range() {
        let topo = zoo_like(&ZooConfig {
            routers: 100,
            avg_degree: 3.0,
            seed: 11,
        });
        let deg = topo.num_links() as f64 / topo.num_routers() as f64; // directed
        assert!((1.8..=4.5).contains(&deg), "directed degree {deg}");
    }

    #[test]
    fn figure4_sizes_span_the_zoo_range() {
        let sizes = figure4_sizes(10);
        assert_eq!(sizes.len(), 10);
        assert_eq!(*sizes.first().unwrap(), 16);
        assert_eq!(*sizes.last().unwrap(), 240);
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn coordinates_present_for_distance() {
        let topo = zoo_like(&ZooConfig::default());
        for r in topo.routers() {
            assert!(topo.router(r).coord.is_some());
        }
        for l in topo.links() {
            assert!(topo.link(l).distance >= 1);
        }
    }
}
