//! # topogen — evaluation workloads for the AalWiNes reproduction
//!
//! The paper evaluates on (a) the NORDUnet operator network (31 routers,
//! >250 000 forwarding rules — proprietary) and (b) variants of Internet
//! > Topology Zoo networks "with label switching paths between any two
//! > edge routers and with local fast failover protection by introducing
//! > tunnels based on shortest paths". Neither dataset ships with this
//! > repository, so this crate builds faithful synthetic stand-ins:
//!
//! * [`zoo`] — deterministic geometric random topologies matching the
//!   Zoo's size distribution (average 84 routers, up to 240), with
//!   coordinates so the `Distance` quantity is meaningful,
//! * [`lsp`] — the MPLS data-plane construction: per-destination IP
//!   label-switching paths along shortest paths, link-protection bypass
//!   tunnels (priority-2 `swap∘push` rules exactly as in the paper's
//!   Figure 1), and operator-style service-label chains,
//! * [`nordunet`] — a 31-router operator network scaled to ≥250 000
//!   rules via service chains,
//! * [`queries`] — deterministic generators for the paper's query
//!   families (Table 1 and the running example).
//!
//! Everything is seeded and reproducible: the same seed yields the same
//! network and query set on every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gml;
pub mod lsp;
pub mod nordunet;
pub mod queries;
pub mod scale;
pub mod zoo;

pub use gml::{topology_from_gml, topology_from_gml_bytes};
pub use lsp::{build_mpls_dataplane, LspConfig};
pub use nordunet::nordunet_like;
pub use scale::{scale_tier, ScaleConfig};
pub use zoo::{zoo_like, ZooConfig};
