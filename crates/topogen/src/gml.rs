//! GML parsing for Internet Topology Zoo files.
//!
//! The paper's Figure-4 networks come from the Topology Zoo, which
//! distributes its maps as GML documents:
//!
//! ```text
//! graph [
//!   node [ id 0 label "Aalborg" Latitude 57.05 Longitude 9.92 ]
//!   edge [ source 0 target 1 LinkLabel "OC-48" ]
//! ]
//! ```
//!
//! [`topology_from_gml`] turns such a document into a [`Topology`]:
//! every GML edge becomes a directed link pair, link distances come from
//! node coordinates where present (kilometres, the Zoo convention the
//! paper's `Distance` quantity relies on), and duplicate node labels —
//! common in Zoo files — are disambiguated with the node id.
//!
//! The synthetic [`zoo_like`](crate::zoo::zoo_like) generator remains
//! the default workload (the Zoo archive cannot be bundled here), but
//! any downloaded `.gml` file drops in through this module.

use netmodel::Topology;
use std::collections::HashMap;
use std::fmt;

/// A GML value: a scalar or a nested list of key/value pairs.
#[derive(Clone, Debug, PartialEq)]
pub enum GmlValue {
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A quoted string.
    Str(String),
    /// A `[ … ]` block.
    List(Vec<(String, GmlValue)>),
}

impl GmlValue {
    fn as_f64(&self) -> Option<f64> {
        match self {
            GmlValue::Int(i) => Some(*i as f64),
            GmlValue::Float(f) => Some(*f),
            _ => None,
        }
    }
    fn as_i64(&self) -> Option<i64> {
        match self {
            GmlValue::Int(i) => Some(*i),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            GmlValue::Str(s) => Some(s),
            _ => None,
        }
    }
    fn entries(&self) -> &[(String, GmlValue)] {
        match self {
            GmlValue::List(l) => l,
            _ => &[],
        }
    }
    fn get(&self, key: &str) -> Option<&GmlValue> {
        self.entries()
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v)
    }
}

/// A GML parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GmlError {
    /// Byte offset.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for GmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GML error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for GmlError {}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> GmlError {
        GmlError {
            pos: self.i,
            msg: msg.into(),
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self.i < self.s.len() && (self.s[self.i] as char).is_whitespace() {
                self.i += 1;
            }
            if self.i < self.s.len() && self.s[self.i] == b'#' {
                while self.i < self.s.len() && self.s[self.i] != b'\n' {
                    self.i += 1;
                }
            } else {
                return;
            }
        }
    }

    fn key(&mut self) -> Option<String> {
        self.skip_ws_and_comments();
        let start = self.i;
        while self.i < self.s.len() {
            let c = self.s[self.i] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
        }
    }

    fn value(&mut self) -> Result<GmlValue, GmlError> {
        self.skip_ws_and_comments();
        match self.s.get(self.i).map(|&b| b as char) {
            Some('[') => {
                self.i += 1;
                let mut entries = Vec::new();
                loop {
                    self.skip_ws_and_comments();
                    if self.s.get(self.i) == Some(&b']') {
                        self.i += 1;
                        return Ok(GmlValue::List(entries));
                    }
                    let Some(key) = self.key() else {
                        return Err(self.err("expected key or ']'"));
                    };
                    let v = self.value()?;
                    entries.push((key, v));
                }
            }
            Some('"') => {
                self.i += 1;
                let start = self.i;
                while self.i < self.s.len() && self.s[self.i] != b'"' {
                    self.i += 1;
                }
                if self.i >= self.s.len() {
                    return Err(self.err("unterminated string"));
                }
                let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
                self.i += 1;
                Ok(GmlValue::Str(text))
            }
            Some(c) if c == '-' || c == '+' || c.is_ascii_digit() => {
                let start = self.i;
                let mut is_float = false;
                while self.i < self.s.len() {
                    let c = self.s[self.i] as char;
                    if c.is_ascii_digit() || c == '-' || c == '+' {
                        self.i += 1;
                    } else if c == '.' || c == 'e' || c == 'E' {
                        is_float = true;
                        self.i += 1;
                    } else {
                        break;
                    }
                }
                // The lexer above only consumes ASCII bytes, but a
                // structured error keeps the panic-free ingestion
                // guarantee honest if that invariant ever slips (the
                // byte-level entry points feed raw, untrusted files
                // through here).
                let text = std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| self.err("invalid UTF-8 in number"))?;
                if is_float {
                    text.parse::<f64>()
                        .map(GmlValue::Float)
                        .map_err(|e| self.err(format!("bad float {text:?}: {e}")))
                } else {
                    text.parse::<i64>()
                        .map(GmlValue::Int)
                        .map_err(|e| self.err(format!("bad int {text:?}: {e}")))
                }
            }
            other => Err(self.err(format!("unexpected {other:?}"))),
        }
    }
}

/// Parse a GML document into its top-level key/value pairs.
pub fn parse_gml(doc: &str) -> Result<Vec<(String, GmlValue)>, GmlError> {
    parse_gml_bytes(doc.as_bytes())
}

/// Parse a GML document from raw bytes — e.g. a file read straight off
/// disk without a UTF-8 validity check.
///
/// Topology Zoo archives occasionally carry Latin-1 city names; those
/// (and any other invalid UTF-8) are replaced lossily inside keys and
/// quoted strings, while structurally invalid input is rejected with a
/// typed [`GmlError`] carrying a byte offset. This function never
/// panics, whatever the input bytes.
pub fn parse_gml_bytes(doc: &[u8]) -> Result<Vec<(String, GmlValue)>, GmlError> {
    let mut p = P { s: doc, i: 0 };
    let mut entries = Vec::new();
    loop {
        p.skip_ws_and_comments();
        if p.i >= p.s.len() {
            return Ok(entries);
        }
        let Some(key) = p.key() else {
            return Err(p.err("expected a top-level key"));
        };
        let v = p.value()?;
        entries.push((key, v));
    }
}

/// Build a [`Topology`] from a Topology-Zoo-style GML document.
///
/// Every edge yields both directed links. Distances are haversine
/// kilometres where both endpoints carry `Latitude`/`Longitude`
/// (minimum 1), else 1.
pub fn topology_from_gml(doc: &str) -> Result<Topology, GmlError> {
    topology_from_gml_bytes(doc.as_bytes())
}

/// Byte-level variant of [`topology_from_gml`]: accepts raw file
/// contents and never panics (see [`parse_gml_bytes`]).
pub fn topology_from_gml_bytes(doc: &[u8]) -> Result<Topology, GmlError> {
    let top = parse_gml_bytes(doc)?;
    let graph = top
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("graph"))
        .map(|(_, v)| v)
        .ok_or(GmlError {
            pos: 0,
            msg: "no graph block".into(),
        })?;

    let mut topo = Topology::new();
    let mut by_gml_id: HashMap<i64, netmodel::RouterId> = HashMap::new();
    let mut used_names: HashMap<String, usize> = HashMap::new();

    for (k, v) in graph.entries() {
        if !k.eq_ignore_ascii_case("node") {
            continue;
        }
        let id = v.get("id").and_then(GmlValue::as_i64).ok_or(GmlError {
            pos: 0,
            msg: "node without id".into(),
        })?;
        let raw = v
            .get("label")
            .and_then(GmlValue::as_str)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("N{id}"));
        // The Zoo has duplicate labels ("None", repeated cities).
        let n = used_names.entry(raw.clone()).or_insert(0);
        let name = if *n == 0 {
            raw.clone()
        } else {
            format!("{raw}_{id}")
        };
        *n += 1;
        let coord = match (
            v.get("Latitude").and_then(GmlValue::as_f64),
            v.get("Longitude").and_then(GmlValue::as_f64),
        ) {
            (Some(lat), Some(lng)) => Some((lat, lng)),
            _ => None,
        };
        let rid = topo.add_router(&name, coord);
        by_gml_id.insert(id, rid);
    }

    let mut edge_count: HashMap<(i64, i64), usize> = HashMap::new();
    for (k, v) in graph.entries() {
        if !k.eq_ignore_ascii_case("edge") {
            continue;
        }
        let src = v.get("source").and_then(GmlValue::as_i64);
        let dst = v.get("target").and_then(GmlValue::as_i64);
        let (Some(src), Some(dst)) = (src, dst) else {
            return Err(GmlError {
                pos: 0,
                msg: "edge without source/target".into(),
            });
        };
        let (Some(&a), Some(&b)) = (by_gml_id.get(&src), by_gml_id.get(&dst)) else {
            return Err(GmlError {
                pos: 0,
                msg: format!("edge references unknown node {src} or {dst}"),
            });
        };
        // Parallel edges exist in the Zoo; number the interfaces.
        let key = if src <= dst { (src, dst) } else { (dst, src) };
        let idx = edge_count.entry(key).or_insert(0);
        let suffix = if *idx == 0 {
            String::new()
        } else {
            format!("_{idx}")
        };
        *idx += 1;
        let km = topo
            .geo_distance(a, b)
            .map(|d| d.max(1.0) as u64)
            .unwrap_or(1);
        let (na, nb) = (topo.router(a).name.clone(), topo.router(b).name.clone());
        topo.add_link(
            a,
            &format!("to_{nb}{suffix}"),
            b,
            &format!("to_{na}{suffix}"),
            km,
        );
        topo.add_link(
            b,
            &format!("to_{na}{suffix}"),
            a,
            &format!("to_{nb}{suffix}"),
            km,
        );
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # A fictional three-city backbone in Zoo style.
        Creator "reproduction test"
        graph [
          directed 0
          label "MiniNet"
          node [ id 0 label "Aalborg"    Latitude 57.048 Longitude 9.9187 ]
          node [ id 1 label "Copenhagen" Latitude 55.676 Longitude 12.568 ]
          node [ id 2 label "Vienna"     Latitude 48.208 Longitude 16.373 ]
          edge [ source 0 target 1 LinkLabel "OC-48" ]
          edge [ source 1 target 2 ]
        ]
    "#;

    #[test]
    fn parses_sample_topology() {
        let topo = topology_from_gml(SAMPLE).unwrap();
        assert_eq!(topo.num_routers(), 3);
        assert_eq!(topo.num_links(), 4, "two edges → four directed links");
        let aal = topo.router_by_name("Aalborg").unwrap();
        let cph = topo.router_by_name("Copenhagen").unwrap();
        assert!(topo.router(aal).coord.is_some());
        // Aalborg–Copenhagen ≈ 180–240 km; the link distance must be geo.
        let l = topo
            .links()
            .find(|&l| topo.src(l) == aal && topo.dst(l) == cph)
            .unwrap();
        let d = topo.link(l).distance;
        assert!((100..400).contains(&d), "distance {d}");
    }

    #[test]
    fn duplicate_labels_are_disambiguated() {
        let doc = r#"graph [
            node [ id 0 label "None" ]
            node [ id 1 label "None" ]
            edge [ source 0 target 1 ]
        ]"#;
        let topo = topology_from_gml(doc).unwrap();
        assert_eq!(topo.num_routers(), 2);
        assert!(topo.router_by_name("None").is_some());
        assert!(topo.router_by_name("None_1").is_some());
    }

    #[test]
    fn parallel_edges_get_distinct_interfaces() {
        let doc = r#"graph [
            node [ id 0 label "A" ]
            node [ id 1 label "B" ]
            edge [ source 0 target 1 ]
            edge [ source 0 target 1 ]
        ]"#;
        let topo = topology_from_gml(doc).unwrap();
        assert_eq!(topo.num_links(), 4);
        let a = topo.router_by_name("A").unwrap();
        let names: Vec<String> = topo
            .links_from(a)
            .iter()
            .map(|&l| topo.link(l).src_if.clone())
            .collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(topology_from_gml("graph [ node [ id ] ]").is_err());
        assert!(topology_from_gml("nodes_only 3").is_err());
        assert!(topology_from_gml("graph [ edge [ source 0 target 9 ] ]").is_err());
        assert!(topology_from_gml("graph [ node [ id 0 label \"unterminated ] ]").is_err());
    }

    #[test]
    fn non_utf8_bytes_never_panic() {
        // Latin-1 city name inside a string: tolerated lossily.
        let latin1 = b"graph [ node [ id 0 label \"K\xf8benhavn\" ] ]".to_vec();
        let topo = topology_from_gml_bytes(&latin1).expect("latin-1 strings tolerated");
        assert_eq!(topo.num_routers(), 1);
        // Invalid bytes in structural positions: typed error, no panic.
        for doc in [
            &b"graph [ \xff\xfe ]"[..],
            &b"\xc3graph [ node [ id 0 ] ]"[..],
            &b"graph [ node [ id 0\xff1 ] ]"[..],
            &b"graph [ node [ id \xf01 label \"x\" ] ]"[..],
        ] {
            match topology_from_gml_bytes(doc) {
                Ok(_) => {}
                Err(e) => assert!(e.pos <= doc.len(), "offset {} beyond input", e.pos),
            }
        }
    }

    #[test]
    fn gml_topology_feeds_the_pipeline() {
        // End to end: GML → dataplane → verification.
        use crate::lsp::{build_mpls_dataplane, LspConfig};
        use query::parse_query;
        let topo = topology_from_gml(SAMPLE).unwrap();
        let dp = build_mpls_dataplane(
            topo,
            &LspConfig {
                edge_routers: 2,
                max_pairs: 4,
                protect: false,
                service_chains: 1,
                seed: 1,
            },
        );
        assert!(dp.net.num_rules() > 0);
        let a = dp.net.topology.router(dp.edge_routers[0]).name.clone();
        let b = dp.net.topology.router(dp.edge_routers[1]).name.clone();
        let q = parse_query(&format!("<ip> [.#{a}] .* [.#{b}] <ip> 0")).unwrap();
        use aalwines::{Engine, Verifier, VerifyOptions};
        let _ = Verifier::new(&dp.net).verify(&q, &VerifyOptions::default());
    }
}
