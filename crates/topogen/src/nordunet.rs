//! A NORDUnet-like synthetic operator network.
//!
//! The paper's case study runs on NORDUnet: 31 routers and more than
//! 250 000 forwarding rules driven by "numerous service labels by which
//! it communicates with neighboring networks". The real snapshot is
//! proprietary; this module builds a 31-router backbone of matching
//! shape and scales the rule count with service chains, so the
//! verification engines face the same input dimensions (state count,
//! label count, rule count) as the paper's Table 1.

use crate::lsp::{build_mpls_dataplane, Dataplane, LspConfig};
use crate::zoo::{zoo_like, ZooConfig};

/// Build the NORDUnet-like network.
///
/// `scale` multiplies the service-chain count; `scale = 1.0` targets the
/// paper's >250k rules, smaller values produce faster-to-build variants
/// for tests.
pub fn nordunet_like(scale: f64) -> Dataplane {
    let topo = zoo_like(&ZooConfig {
        routers: 31,
        avg_degree: 3.2,
        seed: 0x0D0,
    });
    // Rule accounting: each service chain contributes ≈ path-length + 1
    // rules (≈ 4–5 on a 31-router backbone) plus protection clones
    // (roughly doubling). ~28k chains land beyond 250k rules.
    let chains = (28_000.0 * scale).round() as usize;
    build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 16,
            max_pairs: 240,
            protect: true,
            service_chains: chains.max(1),
            seed: 0x0D1,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_builds_quickly() {
        let dp = nordunet_like(0.01);
        assert_eq!(dp.edge_routers.len(), 16, "16 of the 31 routers are edges");
        assert!(dp.net.num_rules() > 1_000);
        assert!(dp.net.validate().is_empty());
    }

    #[test]
    #[ignore = "slow: builds the full >250k-rule instance; run explicitly"]
    fn full_scale_matches_paper_dimensions() {
        let dp = nordunet_like(1.0);
        assert!(
            dp.net.num_rules() >= 250_000,
            "paper reports >250k rules, got {}",
            dp.net.num_rules()
        );
    }
}
