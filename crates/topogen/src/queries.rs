//! Deterministic query generators reproducing the paper's query
//! families.
//!
//! Table 1 lists six operator queries; Figure 4 runs "queries like in
//! Table 1 and in our running example" across the Zoo networks. The
//! generators here produce textual queries (parseable by
//! [`query::parse_query`]) against a generated [`Dataplane`], picking
//! routers and labels with a seeded RNG.

use crate::lsp::Dataplane;
use detrand::DetRng;

/// The six Table-1 query shapes, instantiated against a data plane.
///
/// Returned in table order:
/// 1. `<smpls ip> [.#Ra] .* [.#Rb] <smpls ip> 1`
/// 2. `<smpls ip> [.#Ra] .* [.#Rb] <(mpls* smpls)? ip> 1`
/// 3. `<ip> [.#Ra] .* [.#Rb] <ip> 0`
/// 4. `<[svc] ip> [.#Ra] .* [.#Rm] .* [.#Rb] <ip> 0`
/// 5. the same with `k = 1`
/// 6. `<smpls? ip> .* <. smpls ip> 0`
pub fn table1_queries(dp: &Dataplane, seed: u64) -> Vec<String> {
    let mut rng = DetRng::seed_from_u64(seed);
    let name = |r: netmodel::RouterId| dp.net.topology.router(r).name.clone();
    let pick = |rng: &mut DetRng| dp.edge_routers[rng.gen_range(0..dp.edge_routers.len())];
    let ra = name(pick(&mut rng));
    let rb = {
        let mut r = name(pick(&mut rng));
        while r == ra {
            r = name(pick(&mut rng));
        }
        r
    };
    // Queries 4/5 follow a real service chain through a mid-point, like
    // the operator's waypoint queries in Table 1: pick the longest chain
    // and take its ingress, middle, and egress routers.
    let (svc, ra4, rm, rb4) = dp
        .service_routes
        .iter()
        .enumerate()
        .max_by_key(|(_, route)| route.len())
        .map(|(i, route)| {
            (
                dp.service_labels[i].clone(),
                name(route[0]),
                name(route[route.len() / 2]),
                name(*route.last().expect("non-empty route")),
            )
        })
        .unwrap_or_else(|| ("sv0_0".into(), ra.clone(), ra.clone(), rb.clone()));
    vec![
        format!("<smpls ip> [.#{ra}] .* [.#{rb}] <smpls ip> 1"),
        format!("<smpls ip> [.#{ra}] .* [.#{rb}] <(mpls* smpls)? ip> 1"),
        format!("<ip> [.#{ra}] .* [.#{rb}] <ip> 0"),
        format!("<[{svc}] ip> [.#{ra4}] .* [.#{rm}] .* [.#{rb4}] <. ip> 0"),
        format!("<[{svc}] ip> [.#{ra4}] .* [.#{rm}] .* [.#{rb4}] <. ip> 1"),
        format!("<smpls? ip> .* <. smpls ip> 0"),
    ]
}

/// A mixed batch of `count` queries in the style of Table 1 and the
/// running example, for the Figure-4 sweep.
pub fn figure4_queries(dp: &Dataplane, count: usize, seed: u64) -> Vec<String> {
    let mut rng = DetRng::seed_from_u64(seed);
    let name = |r: netmodel::RouterId| dp.net.topology.router(r).name.clone();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let a = name(dp.edge_routers[rng.gen_range(0..dp.edge_routers.len())]);
        let b = name(dp.edge_routers[rng.gen_range(0..dp.edge_routers.len())]);
        let k = rng.gen_range(0..3u32);
        let q = match i % 7 {
            0 => format!("<ip> [.#{a}] .* [.#{b}] <ip> {k}"),
            1 => format!("<smpls ip> [.#{a}] .* [.#{b}] <smpls ip> {k}"),
            2 => format!("<smpls ip> [.#{a}] .* [.#{b}] <(mpls* smpls)? ip> {k}"),
            3 => format!("<ip> [.#{a}] [^{b}#.]* [.#{b}] <ip> {k}"),
            4 => {
                // Transparency check (φ3 style): does any trace leak an
                // extra MPLS label?
                let svc = dp
                    .service_labels
                    .get(rng.gen_range(0..dp.service_labels.len().max(1)))
                    .cloned()
                    .unwrap_or_else(|| "sv0_0".into());
                format!("<[{svc}] ip> [.#{a}] .* [.#{b}] <mpls+ smpls ip> {k}")
            }
            5 => format!("<smpls? ip> [.#{a}] . . . .* [.#{b}] <smpls? ip> {k}"),
            // The expensive family: no path anchor at all (Table 1's
            // last row) — the whole network's PDS is explored.
            _ => format!("<smpls? ip> .* <. smpls ip> {k}"),
        };
        out.push(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsp::{build_mpls_dataplane, LspConfig};
    use crate::zoo::{zoo_like, ZooConfig};
    use query::parse_query;

    fn dp() -> Dataplane {
        let topo = zoo_like(&ZooConfig {
            routers: 16,
            avg_degree: 3.0,
            seed: 2,
        });
        build_mpls_dataplane(
            topo,
            &LspConfig {
                edge_routers: 5,
                max_pairs: 20,
                protect: true,
                service_chains: 3,
                seed: 4,
            },
        )
    }

    #[test]
    fn table1_queries_parse() {
        let dp = dp();
        let qs = table1_queries(&dp, 1);
        assert_eq!(qs.len(), 6);
        for q in &qs {
            parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn figure4_queries_parse_and_are_deterministic() {
        let dp = dp();
        let a = figure4_queries(&dp, 24, 7);
        let b = figure4_queries(&dp, 24, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 24);
        for q in &a {
            parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
        // All seven families appear.
        let c = figure4_queries(&dp, 7, 7);
        assert_eq!(c.iter().collect::<std::collections::HashSet<_>>().len(), 7);
    }
}
