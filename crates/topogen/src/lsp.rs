//! MPLS data-plane synthesis: label-switching paths, link-protection
//! bypass tunnels, and operator service chains.
//!
//! This reproduces the construction the paper applied to the Topology
//! Zoo networks — "label switching paths between any two edge routers
//! and with local fast failover protection by introducing tunnels based
//! on shortest paths" — and, scaled up via service chains, the
//! NORDUnet-style rule volume.
//!
//! * **IP LSPs.** Every destination edge router owns an IP label
//!   `ipN`. For each source edge router, the shortest path is programmed
//!   with per-hop bottom-of-stack labels: push at ingress, swap at every
//!   hop, penultimate... final-hop pop towards the egress stub.
//! * **Protection.** For every core link `e=(u,v)` carrying traffic, a
//!   bypass path `u→…→v` avoiding `e` is programmed exactly as in the
//!   paper's Figure 1: each primary rule at `u` over `e` gains a
//!   priority-2 clone whose operations end with `push(bypass-label)`;
//!   intermediate bypass routers swap; the penultimate bypass router
//!   pops; and every rule of `v` keyed on arrival over `e` is cloned for
//!   arrival over the bypass's last link.
//! * **Service chains.** Per-customer label chains entering at one edge
//!   router and leaving at another with per-hop swaps (the `s40…s44`
//!   pattern of Figure 1), used to reach operator-scale rule counts.

use detrand::DetRng;
use netmodel::{LabelId, LabelTable, LinkId, Network, Op, RouterId, RoutingEntry, Topology};
use std::collections::{HashMap, HashSet, VecDeque};

/// Parameters of the data-plane construction.
#[derive(Clone, Debug)]
pub struct LspConfig {
    /// Number of edge routers (terminating external links). Capped at
    /// the router count.
    pub edge_routers: usize,
    /// Cap on the number of (source, destination) LSP pairs.
    pub max_pairs: usize,
    /// Whether to program link-protection bypass tunnels.
    pub protect: bool,
    /// Number of service-label chains to install.
    pub service_chains: usize,
    /// RNG seed (edge-router choice, service chain endpoints).
    pub seed: u64,
}

impl Default for LspConfig {
    fn default() -> Self {
        LspConfig {
            edge_routers: 8,
            max_pairs: 200,
            protect: true,
            service_chains: 10,
            seed: 0xE5B,
        }
    }
}

/// A generated MPLS data plane plus handles for query generation.
#[derive(Clone, Debug)]
pub struct Dataplane {
    /// The network (topology + labels + rules).
    pub net: Network,
    /// The core routers designated as edge routers.
    pub edge_routers: Vec<RouterId>,
    /// External ingress link per edge router.
    pub ext_in: HashMap<RouterId, LinkId>,
    /// External egress link per edge router.
    pub ext_out: HashMap<RouterId, LinkId>,
    /// Installed service label names (ingress labels).
    pub service_labels: Vec<String>,
    /// Router sequence (ingress … egress) of each service chain, aligned
    /// with `service_labels`.
    pub service_routes: Vec<Vec<RouterId>>,
    /// Installed destination IP label names.
    pub ip_labels: Vec<String>,
}

/// Breadth-first shortest path from `src` to `dst` over `allowed` links;
/// returns the link sequence.
fn shortest_path(
    topo: &Topology,
    src: RouterId,
    dst: RouterId,
    allowed: &dyn Fn(LinkId) -> bool,
) -> Option<Vec<LinkId>> {
    if src == dst {
        return Some(Vec::new());
    }
    let mut prev: HashMap<RouterId, LinkId> = HashMap::new();
    let mut q = VecDeque::new();
    q.push_back(src);
    let mut seen: HashSet<RouterId> = [src].into_iter().collect();
    while let Some(r) = q.pop_front() {
        for &l in topo.links_from(r) {
            if !allowed(l) {
                continue;
            }
            let d = topo.dst(l);
            if seen.insert(d) {
                prev.insert(d, l);
                if d == dst {
                    let mut path = Vec::new();
                    let mut cur = dst;
                    while cur != src {
                        let l = prev[&cur];
                        path.push(l);
                        cur = topo.src(l);
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(d);
            }
        }
    }
    None
}

/// Build an MPLS data plane over `core` (consumed and extended with
/// external stub routers).
pub fn build_mpls_dataplane(mut core: Topology, cfg: &LspConfig) -> Dataplane {
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let n_core = core.num_routers();
    let n_core_links = core.num_links();

    // Choose edge routers (spread deterministically).
    let count = cfg.edge_routers.clamp(2, n_core as usize);
    let mut edge_routers: Vec<RouterId> = Vec::new();
    let mut candidates: Vec<u32> = (0..n_core).collect();
    for _ in 0..count {
        let i = rng.gen_range(0..candidates.len());
        edge_routers.push(RouterId(candidates.swap_remove(i)));
    }
    edge_routers.sort();

    // External stubs.
    let mut ext_in: HashMap<RouterId, LinkId> = HashMap::new();
    let mut ext_out: HashMap<RouterId, LinkId> = HashMap::new();
    for &r in &edge_routers {
        let name = format!("X_{}", core.router(r).name);
        let x = core.add_router(&name, None);
        let rin = core.add_link(x, "up", r, &format!("ext_{name}"), 1);
        let rout = core.add_link(r, &format!("ext_{name}"), x, "down", 1);
        ext_in.insert(r, rin);
        ext_out.insert(r, rout);
    }
    let is_core_link = |l: LinkId| l.0 < n_core_links;

    // Shortest paths between edge-router pairs are reused heavily —
    // every service chain between the same endpoints walks the same
    // route — so memoize them. At scale-tier sizes (1000+ routers,
    // 100k+ chains) this turns 100k BFS traversals into at most
    // edge_routers² of them.
    let mut path_cache: HashMap<(RouterId, RouterId), Option<Vec<LinkId>>> = HashMap::new();

    let mut labels = LabelTable::new();
    let mut net_rules: Vec<(LinkId, LabelId, usize, RoutingEntry)> = Vec::new();

    // ---- IP LSPs ------------------------------------------------------
    let mut ip_labels = Vec::new();
    let mut pairs = 0usize;
    'outer: for &t in &edge_routers {
        let ip_name = format!("ip{}", t.0);
        let ip = labels.ip(&ip_name);
        ip_labels.push(ip_name);
        for &s in &edge_routers {
            if s == t {
                continue;
            }
            if pairs >= cfg.max_pairs {
                break 'outer;
            }
            let path = path_cache
                .entry((s, t))
                .or_insert_with(|| shortest_path(&core, s, t, &|l| is_core_link(l)));
            let Some(path) = path.clone() else {
                continue;
            };
            pairs += 1;
            if path.is_empty() {
                continue;
            }
            let m = path.len();
            // Egress rule at t: plain IP forwarding to the stub. (Shared
            // across sources using the same last link; de-duplicated at
            // materialization.)
            net_rules.push((
                path[m - 1],
                ip,
                1,
                RoutingEntry {
                    out: ext_out[&t],
                    ops: vec![].into(),
                },
            ));
            if m == 1 {
                // Adjacent: no label needed at all (pure IP hop).
                net_rules.push((
                    ext_in[&s],
                    ip,
                    1,
                    RoutingEntry {
                        out: path[0],
                        ops: vec![].into(),
                    },
                ));
                continue;
            }
            // Hop labels s{src}_{dst}_{i}, bottom-of-stack; penultimate
            // hop popping: the label is removed one hop before t, so the
            // last link carries the bare IP header.
            let hop_label = |labels: &mut LabelTable, i: usize| {
                labels.mpls_bos(&format!("s{}_{}_{}", s.0, t.0, i))
            };
            let first = hop_label(&mut labels, 1);
            net_rules.push((
                ext_in[&s],
                ip,
                1,
                RoutingEntry {
                    out: path[0],
                    ops: vec![Op::Push(first)].into(),
                },
            ));
            for i in 0..m - 1 {
                let cur = hop_label(&mut labels, i + 1);
                let ops = if i + 2 == m {
                    vec![Op::Pop] // penultimate hop popping
                } else {
                    vec![Op::Swap(hop_label(&mut labels, i + 2))]
                };
                net_rules.push((
                    path[i],
                    cur,
                    1,
                    RoutingEntry {
                        out: path[i + 1],
                        ops: ops.into(),
                    },
                ));
            }
        }
    }

    // ---- service chains -------------------------------------------------
    let mut service_labels = Vec::new();
    let mut service_routes: Vec<Vec<RouterId>> = Vec::new();
    for c in 0..cfg.service_chains {
        let s = edge_routers[rng.gen_range(0..edge_routers.len())];
        let mut t = edge_routers[rng.gen_range(0..edge_routers.len())];
        if s == t {
            t = edge_routers
                [(edge_routers.iter().position(|&x| x == s).unwrap() + 1) % edge_routers.len()];
        }
        let path = path_cache
            .entry((s, t))
            .or_insert_with(|| shortest_path(&core, s, t, &|l| is_core_link(l)));
        let Some(path) = path.clone() else {
            continue;
        };
        if path.is_empty() {
            continue;
        }
        let name = format!("sv{c}_0");
        let ingress = labels.mpls_bos(&name);
        service_labels.push(name);
        let mut route = vec![s];
        route.extend(path.iter().map(|&l| core.dst(l)));
        service_routes.push(route);
        let step = |labels: &mut LabelTable, i: usize| labels.mpls_bos(&format!("sv{c}_{i}"));
        let first = step(&mut labels, 1);
        net_rules.push((
            ext_in[&s],
            ingress,
            1,
            RoutingEntry {
                out: path[0],
                ops: vec![Op::Swap(first)].into(),
            },
        ));
        for (i, &l) in path.iter().enumerate() {
            let cur = step(&mut labels, i + 1);
            let next = step(&mut labels, i + 2);
            let out = if i + 1 < path.len() {
                path[i + 1]
            } else {
                ext_out[&t]
            };
            net_rules.push((
                l,
                cur,
                1,
                RoutingEntry {
                    out,
                    ops: vec![Op::Swap(next)].into(),
                },
            ));
        }
    }

    // ---- protection -----------------------------------------------------
    if cfg.protect {
        // Snapshot primary rules: per protected core link e, the rules at
        // s(e) that forward over e, and the rules at t(e) keyed on e.
        let mut over_link: HashMap<LinkId, Vec<usize>> = HashMap::new();
        let mut keyed_on: HashMap<LinkId, Vec<usize>> = HashMap::new();
        for (i, (in_link, _label, _prio, entry)) in net_rules.iter().enumerate() {
            if is_core_link(entry.out) {
                over_link.entry(entry.out).or_default().push(i);
            }
            if is_core_link(*in_link) {
                keyed_on.entry(*in_link).or_default().push(i);
            }
        }
        let protected: Vec<LinkId> = over_link.keys().copied().collect();
        let mut new_rules: Vec<(LinkId, LabelId, usize, RoutingEntry)> = Vec::new();
        for e in protected {
            let (u, v) = (core.src(e), core.dst(e));
            let Some(bypass) = shortest_path(&core, u, v, &|l| is_core_link(l) && l != e) else {
                continue; // no protection possible
            };
            if bypass.len() == 1 {
                // A parallel link: protection needs no tunnel at all —
                // reuse the primary operations over the alternate link.
                for &i in &over_link[&e] {
                    let (in_link, label, _prio, entry) = net_rules[i].clone();
                    new_rules.push((
                        in_link,
                        label,
                        2,
                        RoutingEntry {
                            out: bypass[0],
                            ops: entry.ops.clone(),
                        },
                    ));
                }
                if let Some(rules) = keyed_on.get(&e) {
                    for &i in rules {
                        let (_in, label, prio, entry) = net_rules[i].clone();
                        new_rules.push((bypass[0], label, prio, entry));
                    }
                }
                continue;
            }
            // Bypass labels (plain MPLS) along the detour.
            let bp = |labels: &mut LabelTable, i: usize| labels.mpls(&format!("bp{}_{}", e.0, i));
            // Priority-2 clones at u.
            let first_bp = bp(&mut labels, 1);
            for &i in &over_link[&e] {
                let (in_link, label, prio, entry) = net_rules[i].clone();
                debug_assert_eq!(prio, 1);
                let mut ops = entry.ops.clone();
                ops.push(Op::Push(first_bp));
                new_rules.push((
                    in_link,
                    label,
                    2,
                    RoutingEntry {
                        out: bypass[0],
                        ops,
                    },
                ));
            }
            // Swap chain; pop at the penultimate bypass router.
            for (i, &l) in bypass.iter().enumerate() {
                if i + 1 >= bypass.len() {
                    break;
                }
                let cur = bp(&mut labels, i + 1);
                let ops = if i + 2 == bypass.len() {
                    vec![Op::Pop]
                } else {
                    vec![Op::Swap(bp(&mut labels, i + 2))]
                };
                new_rules.push((
                    l,
                    cur,
                    1,
                    RoutingEntry {
                        out: bypass[i + 1],
                        ops: ops.into(),
                    },
                ));
            }
            // Clone v's rules keyed on e for arrival over the bypass.
            let last = *bypass.last().expect("non-empty bypass");
            if let Some(rules) = keyed_on.get(&e) {
                for &i in rules {
                    let (_in, label, prio, entry) = net_rules[i].clone();
                    new_rules.push((last, label, prio, entry));
                }
            }
        }
        net_rules.extend(new_rules);
    }

    // Materialize, de-duplicating identical (in, label, prio, entry) rows
    // (protection of shared path segments can produce duplicates).
    let mut net = Network::new(core, labels);
    let mut seen: HashSet<(u32, u32, usize, u32, netmodel::OpSeq)> = HashSet::new();
    for (in_link, label, prio, entry) in net_rules {
        let key = (in_link.0, label.0, prio, entry.out.0, entry.ops.clone());
        if seen.insert(key) {
            net.add_rule(in_link, label, prio, entry);
        }
    }
    debug_assert!(net.validate().is_empty(), "{:?}", net.validate());

    Dataplane {
        net,
        edge_routers,
        ext_in,
        ext_out,
        service_labels,
        service_routes,
        ip_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{zoo_like, ZooConfig};
    use netmodel::Header;
    use std::collections::HashSet as Set;

    fn small_dataplane() -> Dataplane {
        let topo = zoo_like(&ZooConfig {
            routers: 20,
            avg_degree: 3.0,
            seed: 5,
        });
        build_mpls_dataplane(
            topo,
            &LspConfig {
                edge_routers: 6,
                max_pairs: 40,
                protect: true,
                service_chains: 4,
                seed: 9,
            },
        )
    }

    #[test]
    fn dataplane_is_well_formed() {
        let dp = small_dataplane();
        assert!(dp.net.validate().is_empty());
        assert!(dp.net.num_rules() > 50);
        assert_eq!(dp.edge_routers.len(), 6);
        assert_eq!(dp.ext_in.len(), 6);
        assert_eq!(dp.ext_out.len(), 6);
        assert!(!dp.ip_labels.is_empty());
        assert!(!dp.service_labels.is_empty());
    }

    #[test]
    fn lsp_forwards_end_to_end() {
        // Simulate a packet from the first edge router towards another
        // destination: it must reach the destination's egress stub.
        let dp = small_dataplane();
        let net = &dp.net;
        let t = dp.edge_routers[1];
        let s = dp.edge_routers[0];
        let ip = net.labels.get(&format!("ip{}", t.0)).expect("ip label");
        let mut link = dp.ext_in[&s];
        let mut header = Header::single(ip);
        let failed = Set::new();
        for _ in 0..64 {
            if link == dp.ext_out[&t] {
                assert_eq!(header, Header::single(ip), "penultimate pop restores IP");
                return;
            }
            let succ = netmodel::successors(net, link, &header, &failed);
            assert!(
                !succ.is_empty(),
                "packet stuck on {} with {}",
                net.topology.link_name(link),
                header.display(&net.labels)
            );
            link = succ[0].0;
            header = succ[0].1.clone();
        }
        panic!("packet looped");
    }

    #[test]
    fn protection_rules_have_priority_two() {
        let dp = small_dataplane();
        let mut saw_backup = false;
        for (link, label) in dp.net.routing_keys() {
            if dp.net.groups(link, label).len() > 1 {
                saw_backup = true;
                break;
            }
        }
        assert!(saw_backup, "protection must install priority-2 groups");
    }

    #[test]
    fn protected_lsp_survives_single_failure() {
        // Fail the first primary link out of the source; the packet must
        // still reach the destination (via the bypass tunnel).
        let dp = small_dataplane();
        let net = &dp.net;
        let (s, t) = (dp.edge_routers[0], dp.edge_routers[1]);
        let ip = net.labels.get(&format!("ip{}", t.0)).expect("ip label");

        // Discover the primary first link.
        let groups = net.groups(dp.ext_in[&s], ip);
        assert!(!groups.is_empty());
        let primary_first = groups[0][0].out;
        let failed: Set<_> = [primary_first].into_iter().collect();

        let mut link = dp.ext_in[&s];
        let mut header = Header::single(ip);
        let mut reached = false;
        for _ in 0..64 {
            if link == dp.ext_out[&t] {
                reached = true;
                break;
            }
            let succ = netmodel::successors(net, link, &header, &failed);
            if succ.is_empty() {
                break;
            }
            link = succ[0].0;
            header = succ[0].1.clone();
        }
        assert!(
            reached,
            "packet should survive failure of {}",
            net.topology.link_name(primary_first)
        );
    }

    #[test]
    fn service_chain_swaps_only() {
        // Service-labelled packets keep exactly one label end-to-end.
        let dp = small_dataplane();
        let net = &dp.net;
        let Some(first_sv) = dp.service_labels.first() else {
            panic!("no service chains built");
        };
        let sv = net.labels.get(first_sv).unwrap();
        // Find its ingress edge router.
        let (mut link, _) = dp
            .ext_in
            .iter()
            .map(|(_, &l)| (l, ()))
            .find(|(l, ())| !net.groups(*l, sv).is_empty())
            .expect("service ingress");
        let ip = net.labels.get(&dp.ip_labels[0]).unwrap();
        let mut header = Header::from_top_first(vec![sv, ip]);
        let failed = Set::new();
        for _ in 0..64 {
            let succ = netmodel::successors(net, link, &header, &failed);
            if succ.is_empty() {
                // Chain exits network with a single swapped label.
                assert_eq!(header.len(), 2);
                return;
            }
            link = succ[0].0;
            header = succ[0].1.clone();
            assert_eq!(header.len(), 2, "service chains never push");
        }
        panic!("service chain looped");
    }

    #[test]
    fn deterministic_generation() {
        let a = small_dataplane();
        let b = small_dataplane();
        assert_eq!(a.net.num_rules(), b.net.num_rules());
        assert_eq!(a.ip_labels, b.ip_labels);
        assert_eq!(a.service_labels, b.service_labels);
    }
}
