//! The internet-scale workload tier (ROADMAP item 5).
//!
//! The paper's evaluation tops out at 240-router Topology Zoo networks
//! and the 31-router/250k-rule NORDUnet snapshot. This module pushes
//! both dimensions up: thousand-router backbones with millions of
//! forwarding rules, built from the same ingredients ([`zoo_like`]
//! topologies and [`build_mpls_dataplane`] LSP/protection/service-chain
//! synthesis) so engine behaviour is comparable across tiers. The
//! compact [`netmodel::OpSeq`] rule representation keeps the resulting
//! tables allocation-lean; [`netmodel::routing::Network::bytes_resident`]
//! reports the load.
//!
//! Everything is seeded and deterministic, like the rest of the crate.

use crate::lsp::{build_mpls_dataplane, Dataplane, LspConfig};
use crate::zoo::{zoo_like, ZooConfig};

/// Parameters of the scale tier.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Number of core routers (the tier targets 1000+).
    pub routers: u32,
    /// Target average undirected degree of the backbone.
    pub avg_degree: f64,
    /// Number of edge routers terminating external links.
    pub edge_routers: usize,
    /// Cap on the number of (source, destination) IP LSP pairs.
    pub max_pairs: usize,
    /// Number of service-label chains (the rule-count multiplier: each
    /// chain contributes ≈ path-length + 1 rules, roughly doubled by
    /// protection).
    pub service_chains: usize,
    /// Whether to program link-protection bypass tunnels.
    pub protect: bool,
    /// RNG seed: same seed, same instance.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig::tier()
    }
}

impl ScaleConfig {
    /// The full scale tier: a 1000-router backbone whose dataplane
    /// lands in the millions of rules (paths on a 1000-router
    /// degree-3 backbone average ≈ 10 hops, so ≈ 90k chains × 11 rules
    /// × 2 for protection ≈ 2M).
    pub fn tier() -> Self {
        ScaleConfig {
            routers: 1000,
            avg_degree: 3.0,
            edge_routers: 64,
            max_pairs: 1000,
            service_chains: 90_000,
            protect: true,
            seed: 0x5CA1E,
        }
    }

    /// A CI-sized instance with the same shape: builds in well under a
    /// second but still exercises every construction path (LSPs,
    /// protection, service chains) on a 120-router backbone.
    pub fn smoke() -> Self {
        ScaleConfig {
            routers: 120,
            avg_degree: 3.0,
            edge_routers: 16,
            max_pairs: 120,
            service_chains: 2_000,
            protect: true,
            seed: 0x5CA1E,
        }
    }
}

/// Build a scale-tier dataplane.
pub fn scale_tier(cfg: &ScaleConfig) -> Dataplane {
    let topo = zoo_like(&ZooConfig {
        routers: cfg.routers,
        avg_degree: cfg.avg_degree,
        seed: cfg.seed,
    });
    build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: cfg.edge_routers,
            max_pairs: cfg.max_pairs,
            protect: cfg.protect,
            service_chains: cfg.service_chains.max(1),
            seed: cfg.seed.wrapping_add(1),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_builds_quickly_and_is_well_formed() {
        let dp = scale_tier(&ScaleConfig::smoke());
        assert_eq!(dp.net.topology.num_routers(), 120 + 16, "core + stubs");
        assert!(dp.net.num_rules() > 10_000, "got {}", dp.net.num_rules());
        assert!(dp.net.validate().is_empty());
        assert!(dp.net.bytes_resident() > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = scale_tier(&ScaleConfig::smoke());
        let b = scale_tier(&ScaleConfig::smoke());
        assert_eq!(a.net.num_rules(), b.net.num_rules());
        assert_eq!(a.ip_labels, b.ip_labels);
        assert_eq!(a.service_labels, b.service_labels);
    }

    #[test]
    #[ignore = "slow: builds the full 1000-router multi-million-rule instance; run explicitly"]
    fn full_tier_matches_target_dimensions() {
        let dp = scale_tier(&ScaleConfig::tier());
        assert!(dp.net.topology.num_routers() >= 1000);
        assert!(
            dp.net.num_rules() >= 1_000_000,
            "scale tier targets millions of rules, got {}",
            dp.net.num_rules()
        );
    }
}
