//! # detrand — a tiny deterministic PRNG for workload generation
//!
//! The workspace builds hermetically (no registry access), so the
//! topology/LSP generators and the randomized test harnesses cannot pull
//! in the `rand` crate. This crate provides the small slice of its API
//! they actually need, backed by SplitMix64 — statistically fine for
//! generating test workloads, explicitly **not** cryptographic.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same sequence, on every platform, so generated topologies, data
//! planes, and differential-test cases are reproducible bit-for-bit.
//!
//! ```
//! use detrand::DetRng;
//! let mut rng = DetRng::seed_from_u64(42);
//! let a = rng.gen_range(0..10u32);
//! assert!(a < 10);
//! let mut rng2 = DetRng::seed_from_u64(42);
//! assert_eq!(a, rng2.gen_range(0..10u32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::ops::Range;

/// A deterministic SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seed the generator. Equal seeds produce equal sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range. Panics on an empty range.
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }
}

/// Types [`DetRng::gen_range`] can sample uniformly from a `Range`.
pub trait RangeSample: Copy + PartialOrd {
    /// Sample uniformly from `range`; panics when `range` is empty.
    fn sample(rng: &mut DetRng, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut DetRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Multiply-shift rejection-free mapping is fine for the
                // small spans the generators use; bias is < span / 2^64.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + v as $t
            }
        }
    )*};
}

impl_int_sample!(u32, u64, usize);

impl RangeSample for f64 {
    fn sample(rng: &mut DetRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(9);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements should not shuffle to identity");
    }
}
