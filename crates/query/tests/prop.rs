//! Randomized tests for the query compiler: the compiled NFAs must agree
//! with a reference regex interpreter on random regexes and words.
//!
//! The regexes are generated with a seeded deterministic RNG so the
//! campaign is hermetic; `--features slow-tests` multiplies the cases.

use detrand::DetRng;
use netmodel::{LabelTable, Network, Topology};
use pdaal::SymbolId;
use query::ast::{LabelAtom, Regex};
use query::compile_label_regex;

/// Reference semantics: does `word` (over label names "a".."d") match?
fn matches_ref(r: &Regex<LabelAtom>, word: &[char]) -> bool {
    match r {
        Regex::Epsilon => word.is_empty(),
        Regex::Atom(a) => {
            word.len() == 1
                && match a {
                    LabelAtom::Any => true,
                    LabelAtom::Lit(n) => n.starts_with(word[0]),
                    LabelAtom::Set(ns) => ns.iter().any(|n| n.starts_with(word[0])),
                    // class atoms unused in this generator
                    _ => false,
                }
        }
        Regex::Concat(parts) => {
            fn go(parts: &[Regex<LabelAtom>], word: &[char]) -> bool {
                match parts {
                    [] => word.is_empty(),
                    [first, rest @ ..] => (0..=word.len())
                        .any(|i| matches_ref(first, &word[..i]) && go(rest, &word[i..])),
                }
            }
            go(parts, word)
        }
        Regex::Alt(parts) => parts.iter().any(|p| matches_ref(p, word)),
        Regex::Star(inner) => {
            if word.is_empty() {
                return true;
            }
            (1..=word.len()).any(|i| matches_ref(inner, &word[..i]) && matches_ref(r, &word[i..]))
        }
        // x+ ≡ x x*; the first x may match ε when x is nullable.
        Regex::Plus(inner) => (0..=word.len()).any(|i| {
            matches_ref(inner, &word[..i]) && matches_ref(&Regex::Star(inner.clone()), &word[i..])
        }),
        Regex::Opt(inner) => word.is_empty() || matches_ref(inner, word),
    }
}

/// Random regex over labels a..d, recursion bounded by `depth`.
fn gen_regex(rng: &mut DetRng, depth: u32) -> Regex<LabelAtom> {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        match rng.gen_range(0..4u32) {
            0 => Regex::Epsilon,
            1 => Regex::Atom(LabelAtom::Any),
            2 => Regex::Atom(LabelAtom::Lit(
                char::from(b'a' + rng.gen_range(0..4u32) as u8).to_string(),
            )),
            _ => {
                let n = rng.gen_range(1..3usize);
                Regex::Atom(LabelAtom::Set(
                    (0..n)
                        .map(|_| char::from(b'a' + rng.gen_range(0..4u32) as u8).to_string())
                        .collect(),
                ))
            }
        }
    } else {
        match rng.gen_range(0..5u32) {
            0 => {
                let n = rng.gen_range(2..4usize);
                Regex::Concat((0..n).map(|_| gen_regex(rng, depth - 1)).collect())
            }
            1 => {
                let n = rng.gen_range(2..3usize);
                Regex::Alt((0..n).map(|_| gen_regex(rng, depth - 1)).collect())
            }
            2 => Regex::Star(Box::new(gen_regex(rng, depth - 1))),
            3 => Regex::Plus(Box::new(gen_regex(rng, depth - 1))),
            _ => Regex::Opt(Box::new(gen_regex(rng, depth - 1))),
        }
    }
}

fn four_label_net() -> Network {
    let mut t = Topology::new();
    t.add_router("r", None);
    let mut labels = LabelTable::new();
    for c in ["a", "b", "c", "d"] {
        labels.mpls(c);
    }
    Network::new(t, labels)
}

/// Thompson construction + ε-elimination agrees with the reference
/// interpreter on every generated word up to length 4.
#[test]
fn compiled_nfa_matches_reference() {
    let cases: u64 = if cfg!(feature = "slow-tests") {
        1600
    } else {
        200
    };
    let mut rng = DetRng::seed_from_u64(0x5EED_0101);
    let net = four_label_net();
    for case in 0..cases {
        let r = gen_regex(&mut rng, 3);
        let nfa = compile_label_regex(&r, &net);
        let n_words = rng.gen_range(1..8usize);
        for _ in 0..n_words {
            let len = rng.gen_range(0..5usize);
            let w: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4u32) as u8).collect();
            let chars: Vec<char> = w.iter().map(|&i| char::from(b'a' + i)).collect();
            let syms: Vec<SymbolId> = w.iter().map(|&i| SymbolId(i as u32)).collect();
            assert_eq!(
                nfa.accepts(&syms),
                matches_ref(&r, &chars),
                "case {case}: regex {r} on word {chars:?}"
            );
        }
    }
}
