//! Property tests for the query compiler: the compiled NFAs must agree
//! with a reference regex interpreter on random regexes and words.

use netmodel::{LabelTable, Network, Topology};
use pdaal::SymbolId;
use proptest::prelude::*;
use query::ast::{LabelAtom, Regex};
use query::compile_label_regex;

/// Reference semantics: does `word` (over label names "a".."d") match?
fn matches_ref(r: &Regex<LabelAtom>, word: &[char]) -> bool {
    match r {
        Regex::Epsilon => word.is_empty(),
        Regex::Atom(a) => {
            word.len() == 1
                && match a {
                    LabelAtom::Any => true,
                    LabelAtom::Lit(n) => n.chars().next() == Some(word[0]),
                    LabelAtom::Set(ns) => ns.iter().any(|n| n.chars().next() == Some(word[0])),
                    // class atoms unused in this generator
                    _ => false,
                }
        }
        Regex::Concat(parts) => {
            fn go(parts: &[Regex<LabelAtom>], word: &[char]) -> bool {
                match parts {
                    [] => word.is_empty(),
                    [first, rest @ ..] => (0..=word.len())
                        .any(|i| matches_ref(first, &word[..i]) && go(rest, &word[i..])),
                }
            }
            go(parts, word)
        }
        Regex::Alt(parts) => parts.iter().any(|p| matches_ref(p, word)),
        Regex::Star(inner) => {
            if word.is_empty() {
                return true;
            }
            (1..=word.len())
                .any(|i| matches_ref(inner, &word[..i]) && matches_ref(r, &word[i..]))
        }
        // x+ ≡ x x*; the first x may match ε when x is nullable.
        Regex::Plus(inner) => (0..=word.len()).any(|i| {
            matches_ref(inner, &word[..i])
                && matches_ref(&Regex::Star(inner.clone()), &word[i..])
        }),
        Regex::Opt(inner) => word.is_empty() || matches_ref(inner, word),
    }
}

fn regex_strategy() -> impl Strategy<Value = Regex<LabelAtom>> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Atom(LabelAtom::Any)),
        (0..4u8).prop_map(|i| Regex::Atom(LabelAtom::Lit(
            char::from(b'a' + i).to_string()
        ))),
        proptest::collection::vec(0..4u8, 1..3).prop_map(|v| {
            Regex::Atom(LabelAtom::Set(
                v.into_iter()
                    .map(|i| char::from(b'a' + i).to_string())
                    .collect(),
            ))
        }),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::Concat),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.clone().prop_map(|r| Regex::Plus(Box::new(r))),
            inner.prop_map(|r| Regex::Opt(Box::new(r))),
        ]
    })
}

fn four_label_net() -> Network {
    let mut t = Topology::new();
    t.add_router("r", None);
    let mut labels = LabelTable::new();
    for c in ["a", "b", "c", "d"] {
        labels.mpls(c);
    }
    Network::new(t, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Thompson construction + ε-elimination agrees with the reference
    /// interpreter on every word up to length 4.
    #[test]
    fn compiled_nfa_matches_reference(
        r in regex_strategy(),
        words in proptest::collection::vec(proptest::collection::vec(0..4u8, 0..5), 1..8),
    ) {
        let net = four_label_net();
        let nfa = compile_label_regex(&r, &net);
        for w in &words {
            let chars: Vec<char> = w.iter().map(|&i| char::from(b'a' + i)).collect();
            let syms: Vec<SymbolId> = w.iter().map(|&i| SymbolId(i as u32)).collect();
            prop_assert_eq!(
                nfa.accepts(&syms),
                matches_ref(&r, &chars),
                "regex {} on word {:?}",
                r,
                chars
            );
        }
    }
}
