//! # query — the AalWiNes reachability query language
//!
//! Queries have the form `<a> b <c> k` (Definition 5):
//!
//! * `a`, `c` — regular expressions over the network's *labels*,
//!   constraining the initial and final header,
//! * `b` — a regular expression over the network's *links*, constraining
//!   the path a packet takes,
//! * `k` — the maximum number of failed links considered.
//!
//! Supported syntax (matching the paper's examples):
//!
//! ```text
//! <a>  ::=  label regex:  . | ip | mpls | smpls | NAME | [N1,N2,…]
//!           combined with  e1 e2 (concat), e1|e2, e*, e+, e?, (e)
//! b    ::=  link regex:    . | [end#end] | [^end#end]
//!           where end ::= . | ROUTER | ROUTER.IFACE
//!           combined with the same operators
//! ```
//!
//! Example: `<smpls? ip> [.#v0] .* [v3#.] <smpls? ip> 1` (φ₄ of the
//! paper's Figure 1d).
//!
//! [`parse_query`] produces an AST; [`compile`] resolves it against a
//! concrete [`Network`](netmodel::Network) into ε-free NFAs: a
//! [`StackNfa`](pdaal::StackNfa) per header constraint (edges are
//! symbol-set predicates, so `mpls` does not enumerate thousands of
//! labels) and a [`LinkNfa`] for the path constraint (edges are bitsets
//! over the link universe, so `^`-negation is exact complement).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod compile;
pub mod linknfa;
pub mod parse;

pub use ast::{Endpoint, LabelAtom, LinkAtom, Query, Regex};
pub use compile::{
    compile, compile_label_regex, compile_link_regex, resolve_label_atom, resolve_link_atom,
    CompiledQuery,
};
pub use linknfa::{LinkNfa, LinkSet};
pub use parse::{parse_query, ParseError};
