//! ε-free NFAs over *links*, compiled from the path constraint `b`.
//!
//! Edge labels are bitsets over the network's link universe
//! ([`LinkSet`]), so complemented atoms (`[^v#u]`) are exact complements
//! and membership tests during the product construction are O(1).

use netmodel::LinkId;

/// A bitset over the links of a fixed topology.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkSet {
    words: Vec<u64>,
    universe: usize,
}

impl LinkSet {
    /// The empty set over a universe of `n` links.
    pub fn empty(n: usize) -> Self {
        LinkSet {
            words: vec![0; n.div_ceil(64)],
            universe: n,
        }
    }

    /// The full set over a universe of `n` links.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for l in 0..n {
            s.insert(LinkId(l as u32));
        }
        s
    }

    /// Insert a link.
    pub fn insert(&mut self, l: LinkId) {
        let i = l.index();
        debug_assert!(i < self.universe);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, l: LinkId) -> bool {
        let i = l.index();
        i < self.universe && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Complement within the universe.
    pub fn complement(&self) -> Self {
        let mut out = Self::empty(self.universe);
        for l in 0..self.universe {
            let id = LinkId(l as u32);
            if !self.contains(id) {
                out.insert(id);
            }
        }
        out
    }

    /// Number of links in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over the members.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.universe)
            .map(|i| LinkId(i as u32))
            .filter(move |&l| self.contains(l))
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }
}

/// An edge of a [`LinkNfa`].
#[derive(Clone, Debug)]
pub struct LinkEdge {
    /// Source state.
    pub from: u32,
    /// Links matched by this edge.
    pub links: LinkSet,
    /// Target state.
    pub to: u32,
}

/// An ε-free NFA over links. The verification core products its states
/// into the PDS control states.
#[derive(Clone, Debug, Default)]
pub struct LinkNfa {
    n_states: u32,
    edges: Vec<LinkEdge>,
    out: Vec<Vec<u32>>,
    initial: Vec<u32>,
    finals: Vec<bool>,
}

impl LinkNfa {
    /// An NFA with `n` states and no edges.
    pub fn new(n: u32) -> Self {
        LinkNfa {
            n_states: n,
            edges: Vec::new(),
            out: vec![Vec::new(); n as usize],
            initial: Vec::new(),
            finals: vec![false; n as usize],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> u32 {
        self.n_states
    }

    /// Add an edge.
    pub fn add_edge(&mut self, from: u32, links: LinkSet, to: u32) {
        let idx = self.edges.len() as u32;
        self.edges.push(LinkEdge { from, links, to });
        self.out[from as usize].push(idx);
    }

    /// Mark an initial state.
    pub fn add_initial(&mut self, s: u32) {
        if !self.initial.contains(&s) {
            self.initial.push(s);
        }
    }

    /// Mark a final state.
    pub fn set_final(&mut self, s: u32) {
        self.finals[s as usize] = true;
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[u32] {
        &self.initial
    }

    /// Whether `s` is final.
    pub fn is_final(&self, s: u32) -> bool {
        self.finals[s as usize]
    }

    /// Edges leaving `s`.
    pub fn edges_from(&self, s: u32) -> impl Iterator<Item = &LinkEdge> + '_ {
        self.out[s as usize]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// All edges.
    pub fn edges(&self) -> &[LinkEdge] {
        &self.edges
    }

    /// Whether the accepted language is empty.
    ///
    /// Sound and complete for ε-free NFAs: non-empty iff some final
    /// state is reachable from an initial state through edges whose link
    /// sets are non-empty (each edge matches one link independently).
    pub fn language_empty(&self) -> bool {
        let mut seen = vec![false; self.n_states as usize];
        let mut stack: Vec<u32> = Vec::new();
        for &s in &self.initial {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            if self.is_final(s) {
                return false;
            }
            for e in self.edges_from(s) {
                if !seen[e.to as usize] && !e.links.is_empty() {
                    seen[e.to as usize] = true;
                    stack.push(e.to);
                }
            }
        }
        true
    }

    /// Whether a sequence of links is accepted.
    pub fn accepts(&self, word: &[LinkId]) -> bool {
        let mut cur: Vec<u32> = self.initial.clone();
        for &l in word {
            let mut next: Vec<u32> = Vec::new();
            for &s in &cur {
                for e in self.edges_from(s) {
                    if e.links.contains(l) && !next.contains(&e.to) {
                        next.push(e.to);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = next;
        }
        cur.iter().any(|&s| self.is_final(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn linkset_basics() {
        let mut s = LinkSet::empty(70);
        assert!(s.is_empty());
        s.insert(l(0));
        s.insert(l(69));
        assert!(s.contains(l(0)) && s.contains(l(69)) && !s.contains(l(1)));
        assert_eq!(s.len(), 2);
        let c = s.complement();
        assert_eq!(c.len(), 68);
        assert!(!c.contains(l(0)) && c.contains(l(1)));
    }

    #[test]
    fn full_set_contains_all() {
        let s = LinkSet::full(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.iter().count(), 10);
        assert!(s.complement().is_empty());
    }

    #[test]
    fn nfa_accepts_sequences() {
        // state0 --{0,1}--> state1 --{2}--> state2(final)
        let mut nfa = LinkNfa::new(3);
        nfa.add_initial(0);
        let mut s01 = LinkSet::empty(4);
        s01.insert(l(0));
        s01.insert(l(1));
        let mut s2 = LinkSet::empty(4);
        s2.insert(l(2));
        nfa.add_edge(0, s01, 1);
        nfa.add_edge(1, s2, 2);
        nfa.set_final(2);
        assert!(nfa.accepts(&[l(0), l(2)]));
        assert!(nfa.accepts(&[l(1), l(2)]));
        assert!(!nfa.accepts(&[l(2), l(2)]));
        assert!(!nfa.accepts(&[l(0)]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn language_emptiness() {
        // Final initial state accepts the empty word: non-empty.
        let mut eps = LinkNfa::new(1);
        eps.add_initial(0);
        eps.set_final(0);
        assert!(!eps.language_empty());

        // Final only reachable through an empty link set: empty.
        let mut dead = LinkNfa::new(2);
        dead.add_initial(0);
        dead.add_edge(0, LinkSet::empty(4), 1);
        dead.set_final(1);
        assert!(dead.language_empty());

        // Reachable through a non-empty set: non-empty.
        let mut ok = LinkNfa::new(2);
        ok.add_initial(0);
        let mut set = LinkSet::empty(4);
        set.insert(l(2));
        ok.add_edge(0, set, 1);
        ok.set_final(1);
        assert!(!ok.language_empty());
    }
}
