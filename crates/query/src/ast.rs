//! Abstract syntax of queries.

use std::fmt;

/// A generic regular expression over atoms of type `A`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Regex<A> {
    /// The empty word.
    Epsilon,
    /// A single atom.
    Atom(A),
    /// Concatenation, in order.
    Concat(Vec<Regex<A>>),
    /// Alternation.
    Alt(Vec<Regex<A>>),
    /// Kleene star.
    Star(Box<Regex<A>>),
    /// One or more repetitions.
    Plus(Box<Regex<A>>),
    /// Zero or one occurrence.
    Opt(Box<Regex<A>>),
}

impl<A> Regex<A> {
    /// Concatenate two regexes, flattening nested concatenations.
    pub fn then(self, other: Regex<A>) -> Regex<A> {
        match (self, other) {
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (Regex::Concat(mut a), Regex::Concat(b)) => {
                a.extend(b);
                Regex::Concat(a)
            }
            (Regex::Concat(mut a), r) => {
                a.push(r);
                Regex::Concat(a)
            }
            (l, Regex::Concat(mut b)) => {
                b.insert(0, l);
                Regex::Concat(b)
            }
            (l, r) => Regex::Concat(vec![l, r]),
        }
    }
}

/// An atom of a label regex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelAtom {
    /// `.` — any label.
    Any,
    /// `ip` — any IP label.
    Ip,
    /// `mpls` — any plain MPLS label.
    Mpls,
    /// `smpls` — any bottom-of-stack MPLS label.
    Smpls,
    /// A literal label name.
    Lit(String),
    /// `[n1,n2,…]` — any of the listed label names.
    Set(Vec<String>),
    /// `[^n1,n2,…]` — any label *except* the listed names (an
    /// expressiveness extension in the spirit of the paper's link-atom
    /// complement).
    NotSet(Vec<String>),
}

/// One side of a link atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// `.` — any router.
    Any,
    /// A router by name.
    Router(String),
    /// A router and interface name (`R0.ae1.11` splits at the first dot).
    RouterIface(String, String),
}

/// An atom of a link regex: `[from#to]`, optionally negated (`[^from#to]`
/// matches every link *not* matched by `[from#to]`). The bare `.` is
/// represented as a non-negated `Any#Any`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkAtom {
    /// Whether the atom is complemented.
    pub negated: bool,
    /// Constraint on the link's source router/interface.
    pub from: Endpoint,
    /// Constraint on the link's target router/interface.
    pub to: Endpoint,
}

impl LinkAtom {
    /// The `.` atom: any link.
    pub fn any() -> Self {
        LinkAtom {
            negated: false,
            from: Endpoint::Any,
            to: Endpoint::Any,
        }
    }
}

/// A full reachability query `<initial> path <final> k`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// Constraint `a` on the initial header.
    pub initial: Regex<LabelAtom>,
    /// Constraint `b` on the link sequence.
    pub path: Regex<LinkAtom>,
    /// Constraint `c` on the final header.
    pub final_: Regex<LabelAtom>,
    /// Maximum number of failed links `k`.
    pub max_failures: u32,
}

impl fmt::Display for LabelAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelAtom::Any => write!(f, "."),
            LabelAtom::Ip => write!(f, "ip"),
            LabelAtom::Mpls => write!(f, "mpls"),
            LabelAtom::Smpls => write!(f, "smpls"),
            LabelAtom::Lit(n) => write!(f, "{n}"),
            LabelAtom::Set(ns) => write!(f, "[{}]", ns.join(",")),
            LabelAtom::NotSet(ns) => write!(f, "[^{}]", ns.join(",")),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Any => write!(f, "."),
            Endpoint::Router(r) => write!(f, "{r}"),
            Endpoint::RouterIface(r, i) => write!(f, "{r}.{i}"),
        }
    }
}

impl fmt::Display for LinkAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.negated && self.from == Endpoint::Any && self.to == Endpoint::Any {
            return write!(f, ".");
        }
        write!(
            f,
            "[{}{}#{}]",
            if self.negated { "^" } else { "" },
            self.from,
            self.to
        )
    }
}

fn fmt_regex<A: fmt::Display>(
    r: &Regex<A>,
    f: &mut fmt::Formatter<'_>,
    parent_tight: bool,
) -> fmt::Result {
    match r {
        Regex::Epsilon => Ok(()),
        Regex::Atom(a) => write!(f, "{a}"),
        Regex::Concat(parts) => {
            if parent_tight {
                write!(f, "(")?;
            }
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                fmt_regex(p, f, false)?;
            }
            if parent_tight {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Alt(parts) => {
            write!(f, "(")?;
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, "|")?;
                }
                fmt_regex(p, f, false)?;
            }
            write!(f, ")")
        }
        Regex::Star(inner) => {
            fmt_regex(inner, f, true)?;
            write!(f, "*")
        }
        Regex::Plus(inner) => {
            fmt_regex(inner, f, true)?;
            write!(f, "+")
        }
        Regex::Opt(inner) => {
            fmt_regex(inner, f, true)?;
            write!(f, "?")
        }
    }
}

impl<A: fmt::Display> fmt::Display for Regex<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_regex(self, f, false)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}> {} <{}> {}",
            self.initial, self.path, self.final_, self.max_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_flattens() {
        let a = Regex::Atom(LabelAtom::Ip);
        let b = Regex::Atom(LabelAtom::Mpls);
        let c = Regex::Atom(LabelAtom::Smpls);
        let r = a.then(b).then(c);
        match r {
            Regex::Concat(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn then_with_epsilon_is_identity() {
        let a = Regex::Atom(LabelAtom::Ip);
        assert_eq!(a.clone().then(Regex::Epsilon), a);
        assert_eq!(Regex::Epsilon.then(a.clone()), a);
    }

    #[test]
    fn display_round_trip_shapes() {
        let q = Query {
            initial: Regex::Atom(LabelAtom::Smpls).then(Regex::Atom(LabelAtom::Ip)),
            path: Regex::Atom(LinkAtom::any())
                .then(Regex::Star(Box::new(Regex::Atom(LinkAtom::any())))),
            final_: Regex::Opt(Box::new(Regex::Atom(LabelAtom::Smpls)))
                .then(Regex::Atom(LabelAtom::Ip)),
            max_failures: 2,
        };
        assert_eq!(format!("{q}"), "<smpls ip> . .* <smpls? ip> 2");
    }
}
