//! Compilation of query regexes into ε-free NFAs, resolved against a
//! concrete network.
//!
//! The pipeline is the classic Thompson construction followed by
//! ε-elimination. It is generic over the atom/predicate types so the same
//! code serves both the label regexes (`a`, `c` → [`StackNfa`]) and the
//! link regex (`b` → [`LinkNfa`]).
//!
//! Resolution semantics for unknown names: a literal label or router name
//! that does not exist in the network yields a predicate matching
//! *nothing* (the query is simply unsatisfiable through that atom), which
//! mirrors the behaviour of the original tool on stale queries.

use crate::ast::{Endpoint, LabelAtom, LinkAtom, Query, Regex};
use crate::linknfa::{LinkNfa, LinkSet};
use netmodel::{LabelKind, Network};
use pdaal::{StackNfa, SymFilter, SymbolId};
use std::collections::HashSet;

// ---- Thompson construction -------------------------------------------------

struct Thompson<T> {
    n_states: u32,
    eps: Vec<(u32, u32)>,
    sym: Vec<(u32, T, u32)>,
}

impl<T> Thompson<T> {
    fn new() -> Self {
        Thompson {
            n_states: 0,
            eps: Vec::new(),
            sym: Vec::new(),
        }
    }

    fn state(&mut self) -> u32 {
        let s = self.n_states;
        self.n_states += 1;
        s
    }

    /// Compile `r`, returning (entry, exit) states.
    fn compile<A>(&mut self, r: &Regex<A>, resolve: &impl Fn(&A) -> T) -> (u32, u32) {
        match r {
            Regex::Epsilon => {
                let s = self.state();
                (s, s)
            }
            Regex::Atom(a) => {
                let s = self.state();
                let t = self.state();
                self.sym.push((s, resolve(a), t));
                (s, t)
            }
            Regex::Concat(parts) => {
                let mut entry = None;
                let mut cur_exit = None;
                for p in parts {
                    let (s, t) = self.compile(p, resolve);
                    if let Some(prev) = cur_exit {
                        self.eps.push((prev, s));
                    } else {
                        entry = Some(s);
                    }
                    cur_exit = Some(t);
                }
                match (entry, cur_exit) {
                    (Some(e), Some(x)) => (e, x),
                    _ => {
                        let s = self.state();
                        (s, s)
                    }
                }
            }
            Regex::Alt(parts) => {
                let entry = self.state();
                let exit = self.state();
                for p in parts {
                    let (s, t) = self.compile(p, resolve);
                    self.eps.push((entry, s));
                    self.eps.push((t, exit));
                }
                (entry, exit)
            }
            Regex::Star(inner) => {
                let entry = self.state();
                let exit = self.state();
                let (s, t) = self.compile(inner, resolve);
                self.eps.push((entry, s));
                self.eps.push((t, exit));
                self.eps.push((entry, exit));
                self.eps.push((t, s));
                (entry, exit)
            }
            Regex::Plus(inner) => {
                let entry = self.state();
                let exit = self.state();
                let (s, t) = self.compile(inner, resolve);
                self.eps.push((entry, s));
                self.eps.push((t, exit));
                self.eps.push((t, s));
                (entry, exit)
            }
            Regex::Opt(inner) => {
                let entry = self.state();
                let exit = self.state();
                let (s, t) = self.compile(inner, resolve);
                self.eps.push((entry, s));
                self.eps.push((t, exit));
                self.eps.push((entry, exit));
                (entry, exit)
            }
        }
    }

    /// ε-closure of each state.
    fn closures(&self) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n_states as usize];
        for &(a, b) in &self.eps {
            adj[a as usize].push(b);
        }
        (0..self.n_states)
            .map(|s| {
                let mut seen: HashSet<u32> = HashSet::new();
                let mut stack = vec![s];
                seen.insert(s);
                while let Some(x) = stack.pop() {
                    for &y in &adj[x as usize] {
                        if seen.insert(y) {
                            stack.push(y);
                        }
                    }
                }
                let mut v: Vec<u32> = seen.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }
}

// ---- label regex → StackNfa -------------------------------------------------

/// Resolve a label atom to the symbol filter it matches on `net`
/// (unknown names match nothing). Shared with the `dplint` query lints.
pub fn resolve_label_atom(atom: &LabelAtom, net: &Network) -> SymFilter {
    let to_sym = |id: netmodel::LabelId| SymbolId(id.0);
    match atom {
        LabelAtom::Any => SymFilter::Any,
        LabelAtom::Ip => SymFilter::In(net.labels.of_kind(LabelKind::Ip).map(to_sym).collect()),
        LabelAtom::Mpls => SymFilter::In(net.labels.of_kind(LabelKind::Mpls).map(to_sym).collect()),
        LabelAtom::Smpls => {
            SymFilter::In(net.labels.of_kind(LabelKind::MplsBos).map(to_sym).collect())
        }
        LabelAtom::Lit(name) => match net.labels.get(name) {
            Some(id) => SymFilter::one(to_sym(id)),
            None => SymFilter::none(),
        },
        LabelAtom::Set(names) => SymFilter::In(
            names
                .iter()
                .filter_map(|n| net.labels.get(n))
                .map(to_sym)
                .collect(),
        ),
        LabelAtom::NotSet(names) => SymFilter::NotIn(
            names
                .iter()
                .filter_map(|n| net.labels.get(n))
                .map(to_sym)
                .collect(),
        ),
    }
}

/// Compile a label regex into an ε-free [`StackNfa`] whose symbols are
/// the network's label ids.
pub fn compile_label_regex(r: &Regex<LabelAtom>, net: &Network) -> StackNfa {
    let mut th = Thompson::new();
    let (entry, exit) = th.compile(r, &|a| resolve_label_atom(a, net));
    let closures = th.closures();

    let mut nfa = StackNfa::new(th.n_states);
    nfa.add_initial(entry);
    for s in 0..th.n_states {
        let reaches_exit = closures[s as usize].contains(&exit);
        if reaches_exit {
            nfa.set_final(s);
        }
    }
    for s in 0..th.n_states {
        for &c in &closures[s as usize] {
            for (from, filter, to) in th.sym.iter() {
                if *from == c {
                    nfa.add_edge(s, filter.clone(), *to);
                }
            }
        }
    }
    nfa
}

// ---- link regex → LinkNfa -----------------------------------------------------

fn endpoint_matches_src(net: &Network, ep: &Endpoint, link: netmodel::LinkId) -> bool {
    let topo = &net.topology;
    match ep {
        Endpoint::Any => true,
        Endpoint::Router(name) => topo
            .router_by_name(name)
            .is_some_and(|r| topo.src(link) == r),
        Endpoint::RouterIface(name, iface) => topo
            .router_by_name(name)
            .is_some_and(|r| topo.src(link) == r && topo.link(link).src_if == *iface),
    }
}

fn endpoint_matches_dst(net: &Network, ep: &Endpoint, link: netmodel::LinkId) -> bool {
    let topo = &net.topology;
    match ep {
        Endpoint::Any => true,
        Endpoint::Router(name) => topo
            .router_by_name(name)
            .is_some_and(|r| topo.dst(link) == r),
        Endpoint::RouterIface(name, iface) => topo
            .router_by_name(name)
            .is_some_and(|r| topo.dst(link) == r && topo.link(link).dst_if == *iface),
    }
}

/// Resolve a link atom to the set of links it matches on `net` (unknown
/// router names match nothing). Shared with the `dplint` query lints.
pub fn resolve_link_atom(atom: &LinkAtom, net: &Network) -> LinkSet {
    let n = net.topology.num_links() as usize;
    let mut set = LinkSet::empty(n);
    for link in net.topology.links() {
        if endpoint_matches_src(net, &atom.from, link) && endpoint_matches_dst(net, &atom.to, link)
        {
            set.insert(link);
        }
    }
    if atom.negated {
        set.complement()
    } else {
        set
    }
}

/// Compile a link regex into an ε-free [`LinkNfa`] over the network's
/// link universe.
pub fn compile_link_regex(r: &Regex<LinkAtom>, net: &Network) -> LinkNfa {
    let mut th = Thompson::new();
    let (entry, exit) = th.compile(r, &|a| resolve_link_atom(a, net));
    let closures = th.closures();

    let mut nfa = LinkNfa::new(th.n_states);
    nfa.add_initial(entry);
    for s in 0..th.n_states {
        if closures[s as usize].contains(&exit) {
            nfa.set_final(s);
        }
    }
    for s in 0..th.n_states {
        for &c in &closures[s as usize] {
            for (from, links, to) in th.sym.iter() {
                if *from == c {
                    nfa.add_edge(s, links.clone(), *to);
                }
            }
        }
    }
    nfa
}

// ---- valid-header intersection ------------------------------------------------

/// Intersect a label NFA with the regular language of *valid* headers
/// `H = L_IP ∪ L_M* L_M⊥ L_IP` (Section 2.2).
///
/// Without this, constraints like `.*` would admit stack words that are
/// not headers at all; the verification core relies on initial/final
/// automata only accepting members of `H`.
pub fn restrict_to_valid_headers(nfa: &StackNfa, net: &Network) -> StackNfa {
    let to_sym = |id: netmodel::LabelId| SymbolId(id.0);
    let kind_set =
        |k: LabelKind| -> HashSet<SymbolId> { net.labels.of_kind(k).map(to_sym).collect() };
    let mpls = kind_set(LabelKind::Mpls);
    let bos = kind_set(LabelKind::MplsBos);
    let ip = kind_set(LabelKind::Ip);
    let kind_of = |s: SymbolId| net.labels.kind(netmodel::LabelId(s.0));

    // Kind automaton for `L_IP ∪ L_M* L_M⊥ L_IP`:
    // 0 = start, 1 = inside the MPLS tower, 2 = after the BOS label,
    // 3 = complete header (final). A bare IP label is only valid as the
    // *first* (and only) label, so `Ip` leaves from 0 and 2 but not 1.
    const KSTATES: u32 = 4;
    let kedges: [(u32, LabelKind, u32); 6] = [
        (0, LabelKind::Mpls, 1),
        (0, LabelKind::MplsBos, 2),
        (0, LabelKind::Ip, 3),
        (1, LabelKind::Mpls, 1),
        (1, LabelKind::MplsBos, 2),
        (2, LabelKind::Ip, 3),
    ];

    let refine = |f: &SymFilter, k: LabelKind| -> Option<SymFilter> {
        let full = match k {
            LabelKind::Mpls => &mpls,
            LabelKind::MplsBos => &bos,
            LabelKind::Ip => &ip,
        };
        let out: HashSet<SymbolId> = match f {
            SymFilter::Any => full.clone(),
            SymFilter::In(s) => s.iter().copied().filter(|&x| kind_of(x) == k).collect(),
            SymFilter::NotIn(s) => full.iter().copied().filter(|x| !s.contains(x)).collect(),
        };
        if out.is_empty() {
            None
        } else {
            Some(SymFilter::In(out))
        }
    };

    let n = nfa.num_states();
    let node = |s: u32, k: u32| s * KSTATES + k;
    let mut out = StackNfa::new(n * KSTATES);
    for &s in nfa.initial_states() {
        out.add_initial(node(s, 0));
    }
    for s in 0..n {
        if nfa.is_final(s) {
            out.set_final(node(s, 3));
        }
        for e in nfa.edges_from(s) {
            for &(kf, kind, kt) in &kedges {
                if let Some(f) = refine(&e.filter, kind) {
                    out.add_edge(node(s, kf), f, node(e.to, kt));
                }
            }
        }
    }
    out
}

/// A query compiled against a concrete network.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// NFA for the initial-header constraint `a`.
    pub initial: StackNfa,
    /// NFA for the path constraint `b`.
    pub path: LinkNfa,
    /// NFA for the final-header constraint `c`.
    pub final_: StackNfa,
    /// The failure budget `k`.
    pub max_failures: u32,
}

/// Compile a parsed [`Query`] against `net`. The header constraints are
/// intersected with the valid-header language `H`.
pub fn compile(q: &Query, net: &Network) -> CompiledQuery {
    CompiledQuery {
        initial: restrict_to_valid_headers(&compile_label_regex(&q.initial, net), net),
        path: compile_link_regex(&q.path, net),
        final_: restrict_to_valid_headers(&compile_label_regex(&q.final_, net), net),
        max_failures: q.max_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use netmodel::{LabelTable, LinkId, Topology};

    /// A triangle network v0 -> v1 -> v2, v0 -> v2 with a few labels.
    fn net() -> (Network, Vec<LinkId>) {
        let mut t = Topology::new();
        let v0 = t.add_router("v0", None);
        let v1 = t.add_router("v1", None);
        let v2 = t.add_router("v2", None);
        let e0 = t.add_link(v0, "a", v1, "a'", 1);
        let e1 = t.add_link(v1, "b", v2, "b'", 1);
        let e2 = t.add_link(v0, "c", v2, "c'", 1);
        let mut labels = LabelTable::new();
        labels.mpls("30");
        labels.mpls("31");
        labels.mpls_bos("s20");
        labels.ip("ip1");
        (Network::new(t, labels), vec![e0, e1, e2])
    }

    fn sym(net: &Network, name: &str) -> SymbolId {
        SymbolId(net.labels.get(name).unwrap().0)
    }

    #[test]
    fn label_classes_resolve_to_kind_sets() {
        let (net, _) = net();
        let q = parse_query("<mpls* smpls ip> .* <ip> 0").unwrap();
        let nfa = compile_label_regex(&q.initial, &net);
        let (m30, m31, s20, ip1) = (
            sym(&net, "30"),
            sym(&net, "31"),
            sym(&net, "s20"),
            sym(&net, "ip1"),
        );
        assert!(nfa.accepts(&[s20, ip1]));
        assert!(nfa.accepts(&[m30, s20, ip1]));
        assert!(nfa.accepts(&[m30, m31, m30, s20, ip1]));
        assert!(!nfa.accepts(&[ip1, ip1]));
        assert!(!nfa.accepts(&[m30, ip1]));
        assert!(!nfa.accepts(&[s20]));
    }

    #[test]
    fn literal_and_set_atoms() {
        let (net, _) = net();
        let q = parse_query("<[30,31] ip> .* <s20 ip> 0").unwrap();
        let a = compile_label_regex(&q.initial, &net);
        assert!(a.accepts(&[sym(&net, "30"), sym(&net, "ip1")]));
        assert!(a.accepts(&[sym(&net, "31"), sym(&net, "ip1")]));
        assert!(!a.accepts(&[sym(&net, "s20"), sym(&net, "ip1")]));
        let c = compile_label_regex(&q.final_, &net);
        assert!(c.accepts(&[sym(&net, "s20"), sym(&net, "ip1")]));
    }

    #[test]
    fn unknown_label_matches_nothing() {
        let (net, _) = net();
        let q = parse_query("<nosuch ip> .* <ip> 0").unwrap();
        let a = compile_label_regex(&q.initial, &net);
        assert!(!a.accepts(&[sym(&net, "30"), sym(&net, "ip1")]));
        assert!(!a.accepts(&[sym(&net, "ip1")]));
    }

    #[test]
    fn link_atoms_resolve_endpoints() {
        let (net, e) = net();
        let q = parse_query("<ip> [v0#v1] <ip> 0").unwrap();
        let nfa = compile_link_regex(&q.path, &net);
        assert!(nfa.accepts(&[e[0]]));
        assert!(!nfa.accepts(&[e[1]]));
        assert!(!nfa.accepts(&[e[2]]));
    }

    #[test]
    fn wildcard_endpoints() {
        let (net, e) = net();
        let q = parse_query("<ip> [.#v2] <ip> 0").unwrap();
        let nfa = compile_link_regex(&q.path, &net);
        assert!(!nfa.accepts(&[e[0]]));
        assert!(nfa.accepts(&[e[1]]));
        assert!(nfa.accepts(&[e[2]]));
    }

    #[test]
    fn negated_atom_is_complement() {
        let (net, e) = net();
        let q = parse_query("<ip> [^v0#v1] <ip> 0").unwrap();
        let nfa = compile_link_regex(&q.path, &net);
        assert!(!nfa.accepts(&[e[0]]));
        assert!(nfa.accepts(&[e[1]]));
        assert!(nfa.accepts(&[e[2]]));
    }

    #[test]
    fn interface_endpoints_select_single_link() {
        let (net, e) = net();
        let q = parse_query("<ip> [v0.a#v1.a'] <ip> 0").unwrap();
        // note: ' is not an ident char; use the until-based endpoint
        // parser via the raw bracket content — rename interfaces to be
        // safe in this test instead:
        drop(q);
        let q = parse_query("<ip> [v0.a#.] <ip> 0").unwrap();
        let nfa = compile_link_regex(&q.path, &net);
        assert!(nfa.accepts(&[e[0]]));
        assert!(!nfa.accepts(&[e[2]]));
    }

    #[test]
    fn star_and_concat_paths() {
        let (net, e) = net();
        let q = parse_query("<ip> [v0#.] .* <ip> 0").unwrap();
        let nfa = compile_link_regex(&q.path, &net);
        assert!(nfa.accepts(&[e[0]]));
        assert!(nfa.accepts(&[e[0], e[1]]));
        assert!(nfa.accepts(&[e[2]]));
        assert!(!nfa.accepts(&[e[1]]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn epsilon_path_accepts_empty() {
        let (net, e) = net();
        let q = parse_query("<ip> .* <ip> 0").unwrap();
        let nfa = compile_link_regex(&q.path, &net);
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[e[0], e[1]]));
    }

    #[test]
    fn full_compile_carries_k() {
        let (net, _) = net();
        let q = parse_query("<ip> .* <ip> 3").unwrap();
        let cq = compile(&q, &net);
        assert_eq!(cq.max_failures, 3);
    }

    #[test]
    fn validity_intersection_prunes_invalid_stacks() {
        let (net, _) = net();
        let q = parse_query("<.*> .* <ip> 0").unwrap();
        let raw = compile_label_regex(&q.initial, &net);
        let valid = restrict_to_valid_headers(&raw, &net);
        let (m30, s20, ip1) = (sym(&net, "30"), sym(&net, "s20"), sym(&net, "ip1"));
        // raw `.*` accepts anything; restricted accepts only members of H.
        assert!(raw.accepts(&[m30, ip1]));
        assert!(!valid.accepts(&[m30, ip1]));
        assert!(valid.accepts(&[ip1]));
        assert!(valid.accepts(&[s20, ip1]));
        assert!(valid.accepts(&[m30, m30, s20, ip1]));
        assert!(!valid.accepts(&[s20, s20, ip1]));
        assert!(!valid.accepts(&[]));
        assert!(!valid.accepts(&[s20]));
    }

    #[test]
    fn compile_applies_validity_restriction() {
        let (net, _) = net();
        let q = parse_query("<.*> .* <.*> 0").unwrap();
        let cq = compile(&q, &net);
        let (m30, ip1) = (sym(&net, "30"), sym(&net, "ip1"));
        assert!(!cq.initial.accepts(&[m30, ip1]));
        assert!(cq.initial.accepts(&[ip1]));
        assert!(!cq.final_.accepts(&[m30, ip1]));
    }

    #[test]
    fn negated_label_set_excludes_members() {
        let (net, _) = net();
        let q = parse_query("<[^30] ip> .* <ip> 0").unwrap();
        let a = compile_label_regex(&q.initial, &net);
        assert!(!a.accepts(&[sym(&net, "30"), sym(&net, "ip1")]));
        assert!(a.accepts(&[sym(&net, "31"), sym(&net, "ip1")]));
        assert!(a.accepts(&[sym(&net, "s20"), sym(&net, "ip1")]));
        // Valid-header intersection still applies on top.
        let cq = compile(&q, &net);
        assert!(
            !cq.initial.accepts(&[sym(&net, "31"), sym(&net, "ip1")]),
            "31 on ip without a BOS label is not a valid header"
        );
        assert!(cq.initial.accepts(&[sym(&net, "s20"), sym(&net, "ip1")]));
    }

    #[test]
    fn plus_requires_one() {
        let (net, e) = net();
        let q = parse_query("<ip> .+ <ip> 0").unwrap();
        let nfa = compile_link_regex(&q.path, &net);
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[e[0]]));
        assert!(nfa.accepts(&[e[0], e[1]]));
    }
}
