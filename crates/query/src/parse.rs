//! Hand-rolled recursive-descent parser for the query language.
//!
//! The syntax mixes three small languages (label regexes, link regexes,
//! and the framing `<…> … <…> k`), with context-dependent meaning of `.`
//! (any-label / any-link at regex level, router–interface separator
//! inside a `[v.if#u.if]` atom). A character-level parser keeps this
//! simple and gives exact error positions.

use crate::ast::{Endpoint, LabelAtom, LinkAtom, Query, Regex};
use std::fmt;

/// A parse error with byte position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the query string.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn new(s: &'a str) -> Self {
        P {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.s.get(self.i).map(|&b| b as char)
    }

    /// Peek without skipping whitespace (used for postfix operators,
    /// which must be adjacent).
    fn peek_raw(&self) -> Option<char> {
        self.s.get(self.i).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.s.get(self.i).map(|&b| b as char);
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(self.err(format!("expected {c:?}, found {got:?}"))),
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError { pos: self.i, msg }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len() {
            let c = self.s[self.i] as char;
            if c.is_ascii_alphanumeric() || matches!(c, '$' | '_' | '-' | '/' | ':') {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
        }
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected a number".into()));
        }
        String::from_utf8_lossy(&self.s[start..self.i])
            .parse()
            .map_err(|e| self.err(format!("bad number: {e}")))
    }

    /// Raw text up to (not including) one of the stop characters, used
    /// for endpoint names which may contain dots and slashes.
    fn until(&mut self, stops: &[char]) -> String {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len() && !stops.contains(&(self.s[self.i] as char)) {
            self.i += 1;
        }
        String::from_utf8_lossy(&self.s[start..self.i])
            .trim()
            .to_string()
    }
}

// ---- generic regex machinery -------------------------------------------

/// Atom sub-parser: returns `Ok(None)` when the next token does not
/// start an atom (ends a concatenation).
type AtomParser<'a, A> = &'a mut dyn FnMut(&mut P) -> Result<Option<Regex<A>>, ParseError>;

fn parse_alt<A>(p: &mut P, atom: AtomParser<A>) -> Result<Regex<A>, ParseError> {
    let mut parts = vec![parse_concat(p, atom)?];
    while p.peek() == Some('|') {
        p.bump();
        parts.push(parse_concat(p, atom)?);
    }
    Ok(if parts.len() == 1 {
        parts.remove(0)
    } else {
        Regex::Alt(parts)
    })
}

fn parse_concat<A>(p: &mut P, atom: AtomParser<A>) -> Result<Regex<A>, ParseError> {
    let mut acc = Regex::Epsilon;
    while let Some(part) = parse_postfix(p, atom)? {
        acc = acc.then(part);
    }
    Ok(acc)
}

fn parse_postfix<A>(p: &mut P, atom: AtomParser<A>) -> Result<Option<Regex<A>>, ParseError> {
    let Some(mut r) = atom(p)? else {
        return Ok(None);
    };
    loop {
        match p.peek_raw() {
            Some('*') => {
                p.bump();
                r = Regex::Star(Box::new(r));
            }
            Some('+') => {
                p.bump();
                r = Regex::Plus(Box::new(r));
            }
            Some('?') => {
                p.bump();
                r = Regex::Opt(Box::new(r));
            }
            _ => break,
        }
    }
    Ok(Some(r))
}

// ---- label regexes -------------------------------------------------------

fn label_atom(p: &mut P) -> Result<Option<Regex<LabelAtom>>, ParseError> {
    match p.peek() {
        None | Some('>') | Some('|') | Some(')') => Ok(None),
        Some('.') => {
            p.bump();
            Ok(Some(Regex::Atom(LabelAtom::Any)))
        }
        Some('(') => {
            p.bump();
            let inner = parse_alt(p, &mut label_atom)?;
            p.expect(')')?;
            Ok(Some(inner))
        }
        Some('[') => {
            p.bump();
            let negated = if p.peek() == Some('^') {
                p.bump();
                true
            } else {
                false
            };
            let mut names = Vec::new();
            loop {
                match p.ident() {
                    Some(n) => names.push(n),
                    None => return Err(p.err("expected a label name in set".into())),
                }
                match p.peek() {
                    Some(',') => {
                        p.bump();
                    }
                    Some(']') => {
                        p.bump();
                        break;
                    }
                    got => return Err(p.err(format!("expected ',' or ']', found {got:?}"))),
                }
            }
            Ok(Some(Regex::Atom(if negated {
                LabelAtom::NotSet(names)
            } else {
                LabelAtom::Set(names)
            })))
        }
        Some(_) => {
            let Some(name) = p.ident() else {
                return Err(p.err("expected a label atom".into()));
            };
            let atom = match name.as_str() {
                "ip" => LabelAtom::Ip,
                "mpls" => LabelAtom::Mpls,
                "smpls" => LabelAtom::Smpls,
                _ => LabelAtom::Lit(name),
            };
            Ok(Some(Regex::Atom(atom)))
        }
    }
}

// ---- link regexes ---------------------------------------------------------

fn endpoint_from(raw: &str) -> Endpoint {
    let raw = raw.trim();
    if raw == "." || raw.is_empty() {
        return Endpoint::Any;
    }
    match raw.split_once('.') {
        // `R0.ae1.11` → router R0, interface ae1.11 (split at first dot)
        Some((r, iface)) if !r.is_empty() && !iface.is_empty() => {
            Endpoint::RouterIface(r.to_string(), iface.to_string())
        }
        _ => Endpoint::Router(raw.to_string()),
    }
}

fn link_atom(p: &mut P) -> Result<Option<Regex<LinkAtom>>, ParseError> {
    match p.peek() {
        None | Some('<') | Some('|') | Some(')') => Ok(None),
        Some('.') => {
            p.bump();
            Ok(Some(Regex::Atom(LinkAtom::any())))
        }
        Some('(') => {
            p.bump();
            let inner = parse_alt(p, &mut link_atom)?;
            p.expect(')')?;
            Ok(Some(inner))
        }
        Some('[') => {
            p.bump();
            let negated = if p.peek() == Some('^') {
                p.bump();
                true
            } else {
                false
            };
            let from = endpoint_from(&p.until(&['#', ']']));
            p.expect('#')?;
            let to = endpoint_from(&p.until(&[']']));
            p.expect(']')?;
            Ok(Some(Regex::Atom(LinkAtom { negated, from, to })))
        }
        Some(c) => Err(p.err(format!("unexpected {c:?} in link expression"))),
    }
}

// ---- the full query --------------------------------------------------------

/// Parse a full query `<a> b <c> k`.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = P::new(input);
    p.expect('<')?;
    let initial = parse_alt(&mut p, &mut label_atom)?;
    p.expect('>')?;
    let path = parse_alt(&mut p, &mut link_atom)?;
    p.expect('<')?;
    let final_ = parse_alt(&mut p, &mut label_atom)?;
    p.expect('>')?;
    let max_failures = p.number()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing input after query".into()));
    }
    Ok(Query {
        initial,
        path,
        final_,
        max_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_phi0() {
        // φ0 = <ip> [.#v0] .* [v3#.] <ip> 0
        let q = parse_query("<ip> [.#v0] .* [v3#.] <ip> 0").unwrap();
        assert_eq!(q.max_failures, 0);
        assert_eq!(q.initial, Regex::Atom(LabelAtom::Ip));
        match &q.path {
            Regex::Concat(parts) => {
                assert_eq!(parts.len(), 3);
                assert_eq!(
                    parts[0],
                    Regex::Atom(LinkAtom {
                        negated: false,
                        from: Endpoint::Any,
                        to: Endpoint::Router("v0".into())
                    })
                );
                assert!(matches!(parts[1], Regex::Star(_)));
            }
            other => panic!("expected concat path, got {other:?}"),
        }
    }

    #[test]
    fn parses_phi1_with_negation() {
        // φ1 = <ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2
        let q = parse_query("<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2").unwrap();
        assert_eq!(q.max_failures, 2);
        let Regex::Concat(parts) = &q.path else {
            panic!("not a concat")
        };
        let Regex::Star(inner) = &parts[1] else {
            panic!("not a star")
        };
        let Regex::Atom(atom) = inner.as_ref() else {
            panic!("not an atom")
        };
        assert!(atom.negated);
        assert_eq!(atom.from, Endpoint::Router("v2".into()));
        assert_eq!(atom.to, Endpoint::Router("v3".into()));
    }

    #[test]
    fn parses_phi3_label_structure() {
        // φ3 = <s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1
        let q = parse_query("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1").unwrap();
        let Regex::Concat(parts) = &q.final_ else {
            panic!("not a concat")
        };
        assert_eq!(parts.len(), 3);
        assert!(matches!(&parts[0], Regex::Plus(b) if **b == Regex::Atom(LabelAtom::Mpls)));
        assert_eq!(parts[1], Regex::Atom(LabelAtom::Smpls));
        assert_eq!(parts[2], Regex::Atom(LabelAtom::Ip));
    }

    #[test]
    fn parses_phi4_optionals() {
        let q = parse_query("<smpls? ip> [.#v0] . .* [v3#.] <smpls? ip> 1").unwrap();
        let Regex::Concat(parts) = &q.initial else {
            panic!("not a concat")
        };
        assert!(matches!(&parts[0], Regex::Opt(b) if **b == Regex::Atom(LabelAtom::Smpls)));
    }

    #[test]
    fn parses_table1_service_label() {
        // <[$449550] ip> [.#R0] .* [.#R5] .* [.#R1] <ip> 0
        let q = parse_query("<[$449550] ip> [.#R0] .* [.#R5] .* [.#R1] <ip> 0").unwrap();
        let Regex::Concat(parts) = &q.initial else {
            panic!("not a concat")
        };
        assert_eq!(
            parts[0],
            Regex::Atom(LabelAtom::Set(vec!["$449550".into()]))
        );
    }

    #[test]
    fn parses_grouped_alternation() {
        // <(mpls* smpls)? ip> .* <ip> 1
        let q = parse_query("<(mpls* smpls)? ip> .* <ip> 1").unwrap();
        let Regex::Concat(parts) = &q.initial else {
            panic!("not a concat")
        };
        assert!(matches!(parts[0], Regex::Opt(_)));
    }

    #[test]
    fn parses_interface_endpoints() {
        let q = parse_query("<ip> [R0.ae1.11#R3.et-1/3/0.2] <ip> 0").unwrap();
        let Regex::Atom(atom) = &q.path else {
            panic!("not an atom")
        };
        assert_eq!(
            atom.from,
            Endpoint::RouterIface("R0".into(), "ae1.11".into())
        );
        assert_eq!(
            atom.to,
            Endpoint::RouterIface("R3".into(), "et-1/3/0.2".into())
        );
    }

    #[test]
    fn parses_alternation_of_links() {
        let q = parse_query("<ip> ([a#b]|[c#d]) .* <ip> 0").unwrap();
        let Regex::Concat(parts) = &q.path else {
            panic!("not a concat")
        };
        assert!(matches!(parts[0], Regex::Alt(_)));
    }

    #[test]
    fn display_parses_back() {
        let texts = [
            "<ip> [.#v0] .* [v3#.] <ip> 0",
            "<smpls ip> [.#R6] .* [.#R4] <smpls ip> 1",
            "<smpls? ip> .* <(mpls|smpls) ip> 3",
        ];
        for t in texts {
            let q = parse_query(t).unwrap();
            let q2 = parse_query(&format!("{q}")).unwrap();
            assert_eq!(q, q2, "round trip failed for {t}");
        }
    }

    #[test]
    fn error_reports_position() {
        let e = parse_query("<ip> [#v0 <ip> 0").unwrap_err();
        assert!(e.pos > 0);
        let e2 = parse_query("no angle").unwrap_err();
        assert_eq!(e2.pos, 1);
    }

    #[test]
    fn parses_negated_label_set() {
        let q = parse_query("<[^s40,s41] ip> .* <ip> 0").unwrap();
        let Regex::Concat(parts) = &q.initial else {
            panic!("not a concat")
        };
        assert_eq!(
            parts[0],
            Regex::Atom(LabelAtom::NotSet(vec!["s40".into(), "s41".into()]))
        );
        // Round-trips through Display.
        let again = parse_query(&format!("{q}")).unwrap();
        assert_eq!(q, again);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("<ip> .* <ip> 0 junk").is_err());
    }

    #[test]
    fn empty_header_constraint_is_epsilon() {
        let q = parse_query("<> .* <> 0").unwrap();
        assert_eq!(q.initial, Regex::Epsilon);
        assert_eq!(q.final_, Regex::Epsilon);
    }

    #[test]
    fn unclosed_label_set_is_typed_error() {
        let e = parse_query("<[s40 ip> .* <ip> 0").unwrap_err();
        assert!(e.pos > 0, "error should carry a position: {e}");
        assert!(e.msg.contains("',' or ']'"), "unexpected message: {e}");
    }

    #[test]
    fn unclosed_angle_bracket_is_typed_error() {
        for bad in ["<ip .* <ip> 0", "<ip> .* <ip 0", "<ip> .* <ip"] {
            let e = parse_query(bad).unwrap_err();
            assert!(e.pos <= bad.len(), "position out of bounds for {bad:?}");
        }
    }

    #[test]
    fn empty_label_set_is_typed_error() {
        let e = parse_query("<[] ip> .* <ip> 0").unwrap_err();
        assert!(e.msg.contains("label name"), "unexpected message: {e}");
    }

    #[test]
    fn unclosed_link_atom_is_typed_error() {
        for bad in ["<ip> [v0#v1 <ip> 0", "<ip> [v0 <ip> 0", "<ip> [ <ip> 0"] {
            let e = parse_query(bad).unwrap_err();
            assert!(e.pos <= bad.len());
        }
    }

    #[test]
    fn missing_failure_bound_is_typed_error() {
        let e = parse_query("<ip> .* <ip>").unwrap_err();
        assert!(e.msg.contains("number"), "unexpected message: {e}");
    }

    #[test]
    fn empty_alternation_part_is_epsilon_not_panic() {
        // `a||b` and `(|a)` have empty parts; they parse as epsilon
        // alternatives rather than aborting.
        let q = parse_query("<mpls||ip> .* <ip> 0").unwrap();
        let Regex::Alt(parts) = &q.initial else {
            panic!("not an alt")
        };
        assert!(parts.contains(&Regex::Epsilon));
        assert!(parse_query("<(|mpls) ip> .* <ip> 0").is_ok());
    }

    #[test]
    fn huge_failure_bound_is_typed_error() {
        let e = parse_query("<ip> .* <ip> 99999999999999999999").unwrap_err();
        assert!(e.msg.contains("bad number"), "unexpected message: {e}");
    }
}
