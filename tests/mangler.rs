//! The input mangler: byte-mutate every valid input format 1000× each
//! and assert the parsers never panic and every rejection is a typed
//! error carrying a location (a byte offset at the syntax level, a
//! named location at the semantic level).
//!
//! Seeded by `detrand` so a failure reproduces from its iteration
//! number alone.

use aalwines::examples::paper_network;
use detrand::DetRng;
use formats::topo_xml::FormatError;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

const ROUNDS: usize = 1000;

/// Apply 1–4 byte-level mutations: flip, insert, delete, truncate,
/// or splice a duplicated slice.
fn mangle(rng: &mut DetRng, doc: &str) -> String {
    let mut bytes = doc.as_bytes().to_vec();
    let n = rng.gen_range(1usize..5);
    for _ in 0..n {
        if bytes.is_empty() {
            bytes.push(rng.gen_range(0usize..256) as u8);
            continue;
        }
        let pos = rng.gen_range(0usize..bytes.len());
        match rng.gen_range(0usize..5) {
            0 => bytes[pos] = rng.gen_range(0usize..256) as u8,
            1 => bytes.insert(pos, rng.gen_range(0usize..256) as u8),
            2 => {
                bytes.remove(pos);
            }
            3 => bytes.truncate(pos),
            4 => {
                let end = rng.gen_range(pos..bytes.len() + 1);
                let slice: Vec<u8> = bytes[pos..end].to_vec();
                let at = rng.gen_range(0usize..bytes.len() + 1);
                for (i, b) in slice.into_iter().enumerate() {
                    bytes.insert(at + i, b);
                }
            }
            _ => unreachable!(),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Run `parse` on a mangled document inside `catch_unwind`; panics fail
/// the test with the iteration number, errors are handed to `check`.
fn assert_no_panic<E: std::fmt::Debug>(
    what: &str,
    round: usize,
    doc: &str,
    parse: impl FnOnce(&str) -> Result<(), E>,
    check: impl FnOnce(&E),
) {
    let result = catch_unwind(AssertUnwindSafe(|| parse(doc)));
    match result {
        Err(_) => panic!("{what} parser panicked on round {round}:\n{doc}"),
        Ok(Err(e)) => check(&e),
        Ok(Ok(())) => {}
    }
}

fn check_format_error(e: &FormatError, doc: &str, what: &str, round: usize) {
    match e.offset() {
        Some(pos) => assert!(
            pos <= doc.len(),
            "{what} round {round}: offset {pos} beyond document ({} bytes)",
            doc.len()
        ),
        None => assert!(
            !e.to_string().is_empty(),
            "{what} round {round}: semantic error without a message"
        ),
    }
}

#[test]
fn mangled_topology_xml_never_panics() {
    let topo = paper_network().topology;
    let doc = formats::write_topology(&topo);
    let mut rng = DetRng::seed_from_u64(0x7010);
    for round in 0..ROUNDS {
        let mangled = mangle(&mut rng, &doc);
        assert_no_panic(
            "topology",
            round,
            &mangled,
            |d| formats::parse_topology(d).map(|_| ()),
            |e| check_format_error(e, &mangled, "topology", round),
        );
    }
}

#[test]
fn mangled_route_xml_never_panics() {
    let net = paper_network();
    let doc = formats::write_routes(&net);
    let mut rng = DetRng::seed_from_u64(0x2007E);
    for round in 0..ROUNDS {
        let mangled = mangle(&mut rng, &doc);
        let topo = net.topology.clone();
        assert_no_panic(
            "routes",
            round,
            &mangled,
            move |d| formats::parse_routes(d, topo).map(|_| ()),
            |e| check_format_error(e, &mangled, "routes", round),
        );
    }
}

#[test]
fn mangled_locations_json_never_panics() {
    let net = paper_network();
    let doc = formats::write_locations(&net.topology);
    let mut rng = DetRng::seed_from_u64(0x10C5);
    for round in 0..ROUNDS {
        let mangled = mangle(&mut rng, &doc);
        let mut topo = net.topology.clone();
        assert_no_panic(
            "locations",
            round,
            &mangled,
            move |d| formats::parse_locations(d, &mut topo),
            |e| {
                assert!(
                    e.pos <= mangled.len(),
                    "locations round {round}: offset {} beyond document",
                    e.pos
                )
            },
        );
    }
}

#[test]
fn mangled_isis_snapshot_never_panics() {
    let net = paper_network();
    let (mapping, files) = formats::write_isis_snapshot(&net);
    let by_name: HashMap<String, String> = files.into_iter().collect();
    let mut rng = DetRng::seed_from_u64(0x1515);
    for round in 0..ROUNDS {
        // Alternate between mangling the mapping file and one snapshot
        // member so both the mapping parser and the per-router XML
        // readers see hostile bytes.
        let (map_doc, mangled_member) = if round % 2 == 0 {
            (mangle(&mut rng, &mapping), None)
        } else {
            let names: Vec<&String> = by_name.keys().collect();
            let mut sorted = names.clone();
            sorted.sort();
            let victim = (*rng.choose(&sorted)).clone();
            let broken = mangle(&mut rng, &by_name[&victim]);
            (mapping.clone(), Some((victim, broken)))
        };
        let by_name = &by_name;
        let mangled_member = &mangled_member;
        let reader = move |name: &str| -> Result<String, String> {
            if let Some((victim, broken)) = mangled_member {
                if victim == name {
                    return Ok(broken.clone());
                }
            }
            by_name
                .get(name)
                .cloned()
                .ok_or_else(|| format!("no such file: {name}"))
        };
        // An offset can point into whichever document failed — the
        // mapping, the mangled member, or an intact member — so bound
        // it by the largest document the parser saw.
        let max_len = by_name
            .values()
            .map(String::len)
            .chain([map_doc.len()])
            .chain(mangled_member.iter().map(|(_, b)| b.len()))
            .max()
            .unwrap_or(0);
        assert_no_panic(
            "isis",
            round,
            &map_doc,
            move |d| formats::network_from_isis(d, &reader).map(|_| ()),
            |e| match e.offset() {
                Some(pos) => assert!(
                    pos <= max_len,
                    "isis round {round}: offset {pos} beyond every document"
                ),
                None => assert!(!e.to_string().is_empty()),
            },
        );
    }
}

/// Byte-level mutations — unlike [`mangle`], no lossy UTF-8 round-trip,
/// so the parser under test sees genuinely invalid byte sequences.
fn mangle_bytes(rng: &mut DetRng, doc: &[u8]) -> Vec<u8> {
    let mut bytes = doc.to_vec();
    let n = rng.gen_range(1usize..5);
    for _ in 0..n {
        if bytes.is_empty() {
            bytes.push(rng.gen_range(0usize..256) as u8);
            continue;
        }
        let pos = rng.gen_range(0usize..bytes.len());
        match rng.gen_range(0usize..5) {
            0 => bytes[pos] = rng.gen_range(0usize..256) as u8,
            1 => bytes.insert(pos, rng.gen_range(0usize..256) as u8),
            2 => {
                bytes.remove(pos);
            }
            3 => bytes.truncate(pos),
            4 => {
                let end = rng.gen_range(pos..bytes.len() + 1);
                let slice: Vec<u8> = bytes[pos..end].to_vec();
                let at = rng.gen_range(0usize..bytes.len() + 1);
                for (i, b) in slice.into_iter().enumerate() {
                    bytes.insert(at + i, b);
                }
            }
            _ => unreachable!(),
        }
    }
    bytes
}

#[test]
fn mangled_gml_bytes_never_panic() {
    // Raw bytes straight into the GML parser — including invalid UTF-8
    // sequences the string-based entry point can never see. Seed corpus:
    // a Zoo-style document plus variants with Latin-1 names and a BOM.
    let base = br#"
        Creator "mangler corpus"
        graph [
          directed 0
          node [ id 0 label "Aalborg" Latitude 57.048 Longitude 9.9187 ]
          node [ id 1 label "Copenhagen" Latitude 55.676 Longitude 12.568 ]
          edge [ source 0 target 1 LinkLabel "OC-48" ]
        ]
    "#
    .to_vec();
    let mut latin1 = base.clone();
    latin1.extend_from_slice(b"# K\xf8benhavn \xff\xfe non-utf8 trailer\n");
    let mut bom = vec![0xEF, 0xBB, 0xBF];
    bom.extend_from_slice(&base);
    let corpus: Vec<Vec<u8>> = vec![base, latin1, bom];

    let mut rng = DetRng::seed_from_u64(0x6713);
    for round in 0..ROUNDS {
        let doc = &corpus[round % corpus.len()];
        let mangled = mangle_bytes(&mut rng, doc);
        let result = catch_unwind(AssertUnwindSafe(|| {
            topogen::gml::topology_from_gml_bytes(&mangled).map(|_| ())
        }));
        match result {
            Err(_) => panic!("gml parser panicked on round {round}: {mangled:?}"),
            Ok(Err(e)) => assert!(
                e.pos <= mangled.len(),
                "gml round {round}: offset {} beyond document ({} bytes)",
                e.pos,
                mangled.len()
            ),
            Ok(Ok(())) => {}
        }
    }
}

#[test]
fn mangled_queries_never_panic() {
    let seeds = [
        "<.> .* <.> 0",
        "<smpls ip> .* [s1#.] .* <ip> 0",
        "<.> [.#s2] .* [s5#.] <.> 1",
        "<[^smpls]*> [.#s1] .* [s2#.] <[^smpls]*> 2",
        "<.*> . <.*> 3",
        "<pre> ([.#s1] .* [s2#.])+ <post> 1",
    ];
    let mut rng = DetRng::seed_from_u64(0x90E7);
    for round in 0..ROUNDS {
        let doc = seeds[round % seeds.len()];
        let mangled = mangle(&mut rng, doc);
        assert_no_panic(
            "query",
            round,
            &mangled,
            |d| query::parse_query(d).map(|_| ()),
            |e| {
                assert!(
                    e.pos <= mangled.len(),
                    "query round {round}: offset {} beyond document",
                    e.pos
                )
            },
        );
    }
}
