//! End-to-end verification of the paper's running example (Figure 1):
//! the queries φ₀…φ₄ of Figure 1d, witness traces, the minimum-witness
//! example of Section 3, and engine agreement (Dual vs Moped-baseline vs
//! weighted).

use aalwines::examples::{paper_network, paper_network_with_map};
use aalwines::moped::verify_moped;
use aalwines::{AtomicQuantity, Engine, LinearExpr, Outcome, Verifier, VerifyOptions, WeightSpec};
use query::parse_query;

fn verify(net: &netmodel::Network, q: &str) -> aalwines::Answer {
    let q = parse_query(q).expect("query parses");
    Verifier::new(net).verify(&q, &VerifyOptions::default())
}

fn verify_weighted(net: &netmodel::Network, q: &str, spec: WeightSpec) -> aalwines::Answer {
    let q = parse_query(q).expect("query parses");
    Verifier::new(net).verify(&q, &VerifyOptions::new().with_weights(spec))
}

const PHI0: &str = "<ip> [.#v0] .* [v3#.] <ip> 0";
const PHI1: &str = "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2";
const PHI2: &str = "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0";
const PHI3: &str = "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1";
const PHI4: &str = "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1";

#[test]
fn phi0_satisfied_without_failures() {
    let net = paper_network();
    let ans = verify(&net, PHI0);
    let Outcome::Satisfied(w) = ans.outcome else {
        panic!("φ0 must be satisfied, got {:?}", ans.outcome);
    };
    // Witness must be one of σ0/σ1: 4 links, no failures.
    assert_eq!(w.trace.links(), 4);
    assert!(w.failed_links.is_empty());
    assert!(w.trace.is_valid(&net, &w.failed_links));
}

#[test]
fn phi1_avoids_v2_v3_link() {
    let (net, map) = paper_network_with_map();
    let ans = verify(&net, PHI1);
    let Outcome::Satisfied(w) = ans.outcome else {
        panic!("φ1 must be satisfied, got {:?}", ans.outcome);
    };
    // e4 is the (only) v2->v3 link; the witness must not traverse it.
    let e4 = map.links[4];
    assert!(w.trace.steps.iter().all(|s| s.link != e4));
    assert!(w.trace.is_valid(&net, &w.failed_links));
    assert!(w.failed_links.len() <= 2);
}

#[test]
fn phi2_service_path_exists() {
    let net = paper_network();
    let ans = verify(&net, PHI2);
    let Outcome::Satisfied(w) = ans.outcome else {
        panic!("φ2 must be satisfied, got {:?}", ans.outcome);
    };
    // σ3: 5 links, no failures, enters with s40, leaves with s44 on ip.
    assert_eq!(w.trace.links(), 5);
    assert!(w.failed_links.is_empty());
    let first = &w.trace.steps[0];
    assert_eq!(net.labels.name(first.header.top().unwrap()), "s40");
    let last = w.trace.steps.last().unwrap();
    assert_eq!(net.labels.name(last.header.top().unwrap()), "s44");
}

#[test]
fn phi3_no_label_leak() {
    // Transparency: no trace may leak an extra MPLS label on top of the
    // service label, even with one failure.
    let net = paper_network();
    let ans = verify(&net, PHI3);
    assert!(
        matches!(ans.outcome, Outcome::Unsatisfied),
        "φ3 must be conclusively unsatisfied, got {:?}",
        ans.outcome
    );
}

#[test]
fn phi4_satisfied_with_one_failure() {
    let net = paper_network();
    let ans = verify(&net, PHI4);
    let Outcome::Satisfied(w) = ans.outcome else {
        panic!("φ4 must be satisfied, got {:?}", ans.outcome);
    };
    assert_eq!(w.trace.links(), 5, "witnesses are σ2 or σ3 (5 links)");
    assert!(w.trace.is_valid(&net, &w.failed_links));
}

#[test]
fn phi4_with_zero_failures_only_sigma3() {
    // Paper: "In case of no link failures, the query is satisfied only by
    // the trace σ3" — the s40 service path.
    let net = paper_network();
    let q = "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 0";
    let ans = verify(&net, q);
    let Outcome::Satisfied(w) = ans.outcome else {
        panic!("φ4(k=0) must be satisfied, got {:?}", ans.outcome);
    };
    assert!(w.failed_links.is_empty());
    let first = &w.trace.steps[0];
    assert_eq!(net.labels.name(first.header.top().unwrap()), "s40");
}

#[test]
fn minimum_witness_selects_sigma3() {
    // Section 3: minimizing (Hops, Failures + 3·Tunnels) over φ4's
    // witnesses: σ2 → (5, 7), σ3 → (5, 0); σ3 must win.
    let net = paper_network();
    let spec = WeightSpec::lexicographic(vec![
        LinearExpr::atom(AtomicQuantity::Hops),
        LinearExpr::atom(AtomicQuantity::Failures).plus(3, AtomicQuantity::Tunnels),
    ]);
    let ans = verify_weighted(&net, PHI4, spec);
    let Outcome::Satisfied(w) = ans.outcome else {
        panic!("φ4 must be satisfied, got {:?}", ans.outcome);
    };
    assert_eq!(w.weight.as_deref(), Some(&[5, 0][..]), "σ3's weight vector");
    // σ3 is the s40 service path.
    let first = &w.trace.steps[0];
    assert_eq!(net.labels.name(first.header.top().unwrap()), "s40");
    assert_eq!(w.trace.tunnels(), 0);
    assert!(w.failed_links.is_empty());
}

#[test]
fn weighted_failures_witness_minimizes_failures() {
    let net = paper_network();
    let ans = verify_weighted(&net, PHI4, WeightSpec::single(AtomicQuantity::Failures));
    let Outcome::Satisfied(w) = ans.outcome else {
        panic!("φ4 must be satisfied, got {:?}", ans.outcome);
    };
    // σ3 needs zero failures, so the minimal Failures witness has none.
    assert_eq!(w.weight.as_deref(), Some(&[0][..]));
    assert!(w.failed_links.is_empty());
}

#[test]
fn moped_baseline_agrees_on_all_paper_queries() {
    let net = paper_network();
    for q in [PHI0, PHI1, PHI2, PHI3, PHI4] {
        let dual = verify(&net, q);
        let parsed = parse_query(q).unwrap();
        let moped = verify_moped(&net, &parsed);
        assert_eq!(
            dual.outcome.is_satisfied(),
            moped.outcome.is_satisfied(),
            "engines disagree on {q}"
        );
        assert_eq!(
            matches!(dual.outcome, Outcome::Unsatisfied),
            matches!(moped.outcome, Outcome::Unsatisfied),
            "engines disagree on conclusive-no for {q}"
        );
    }
}

#[test]
fn weighted_engine_agrees_on_satisfiability() {
    let net = paper_network();
    for q in [PHI0, PHI1, PHI2, PHI3, PHI4] {
        let dual = verify(&net, q);
        let weighted = verify_weighted(&net, q, WeightSpec::single(AtomicQuantity::Failures));
        assert_eq!(
            dual.outcome.is_satisfied(),
            weighted.outcome.is_satisfied(),
            "weighted engine disagrees on {q}"
        );
    }
}

#[test]
fn reduction_does_not_change_outcomes() {
    let net = paper_network();
    for q in [PHI0, PHI1, PHI2, PHI3, PHI4] {
        let parsed = parse_query(q).unwrap();
        let with = Verifier::new(&net).verify(&parsed, &VerifyOptions::default());
        let without =
            Verifier::new(&net).verify(&parsed, &VerifyOptions::new().without_reduction());
        assert_eq!(
            with.outcome.is_satisfied(),
            without.outcome.is_satisfied(),
            "reduction changed outcome of {q}"
        );
        assert!(
            with.stats.rules_removed > 0 || with.stats.rules_over == 0,
            "reductions should bite on {q}"
        );
    }
}

#[test]
fn unreachable_pair_is_unsatisfied() {
    // No forwarding rules route from v3 back to v0.
    let net = paper_network();
    let ans = verify(&net, "<ip> [.#v3] .* [v0#.] <ip> 2");
    assert!(matches!(ans.outcome, Outcome::Unsatisfied));
}

#[test]
fn witness_weights_match_trace_quantities() {
    // Cross-check: the weight vector reported by the engine equals the
    // quantities evaluated on the returned trace.
    let net = paper_network();
    let spec = WeightSpec::lexicographic(vec![
        LinearExpr::atom(AtomicQuantity::Links),
        LinearExpr::atom(AtomicQuantity::Tunnels),
    ]);
    for q in [PHI0, PHI2, PHI4] {
        let ans = verify_weighted(&net, q, spec.clone());
        let Outcome::Satisfied(w) = ans.outcome else {
            panic!("{q} must be satisfied");
        };
        let weight = w.weight.expect("weighted run");
        assert_eq!(weight[0], w.trace.links(), "Links mismatch on {q}");
        assert_eq!(weight[1], w.trace.tunnels(), "Tunnels mismatch on {q}");
    }
}
