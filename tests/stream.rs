//! End-to-end coverage of the streaming batch driver: the CLI `--stdin`
//! path (per-line error isolation, ordering, exit codes), the
//! bounded-window guarantee on a 100k-query synthetic stream, and a
//! streamed-vs-batch differential.

use aalwines::{Outcome, SessionBuilder, StreamEvent, StreamOptions, Witness};
use query::parse_query;
use std::io::Write;
use std::process::{Command, Stdio};

const DEMO_QUERIES: [&str; 6] = [
    "<ip> [.#v0] .* [v3#.] <ip> 0",
    "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
    "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
    "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
    "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
    "<ip> [.#v3] .* [v0#.] <ip> 2",
];

/// Run the `aalwines` binary with `args`, feeding `stdin`; returns
/// (exit code, stdout, stderr).
fn run_cli(args: &[&str], stdin: &str) -> (i32, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_aalwines"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn aalwines");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait aalwines");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_stdin_isolates_bad_lines_and_preserves_order() {
    let stdin = format!(
        "{}\nthis is garbage\n# a comment\n\n{}\nalso ] not a query\n{}\n",
        DEMO_QUERIES[0], DEMO_QUERIES[5], DEMO_QUERIES[2]
    );
    let (code, stdout, stderr) = run_cli(&["--demo", "--stdin", "--json"], &stdin);

    // Two bad lines: the whole run exits 1 (input error), but every
    // line — good and bad — still got its own answer, in input order.
    assert_eq!(code, 1, "parse errors must exit non-zero\nstderr: {stderr}");
    assert!(stderr.contains("2 queries failed to parse"), "{stderr}");

    let answers: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("\"kind\":\"answer\""))
        .collect();
    assert_eq!(
        answers.len(),
        5,
        "one answer per non-comment line\n{stdout}"
    );
    let expect = [
        (DEMO_QUERIES[0], false),
        ("this is garbage", true),
        (DEMO_QUERIES[5], false),
        ("also ] not a query", true),
        (DEMO_QUERIES[2], false),
    ];
    for (line, (query, is_error)) in answers.iter().zip(expect) {
        assert!(
            line.contains(&format!("\"query\":\"{query}\"")),
            "order violated: expected {query} in {line}"
        );
        assert_eq!(
            line.contains("\"result\":\"error\""),
            is_error,
            "wrong error flag for {query}: {line}"
        );
    }
    let summary = stdout
        .lines()
        .find(|l| l.contains("\"kind\":\"stream-summary\""))
        .expect("stream summary envelope");
    assert!(summary.contains("\"parseErrors\":2"), "{summary}");
}

#[test]
fn cli_stdin_all_good_exits_by_conclusiveness() {
    let stdin = format!("{}\n{}\n", DEMO_QUERIES[0], DEMO_QUERIES[5]);
    let (code, stdout, _) = run_cli(&["--demo", "--stdin", "--json"], &stdin);
    assert_eq!(code, 0, "conclusive answers exit 0\n{stdout}");
}

#[test]
fn cli_cache_flags_conflict_is_usage_error() {
    // Both orders: the old behavior silently kept whichever flag came
    // last, so check the conflict is order-independent now.
    for args in [
        &["--demo", "--no-cache", "--cache-size", "4"][..],
        &["--demo", "--cache-size", "4", "--no-cache"][..],
    ] {
        let mut with_query = args.to_vec();
        with_query.extend(["--query", DEMO_QUERIES[0]]);
        let (code, _, stderr) = run_cli(&with_query, "");
        assert_eq!(code, 1, "conflict must be a usage error: {args:?}");
        assert!(
            stderr.contains("--no-cache conflicts with --cache-size"),
            "{stderr}"
        );
    }
}

#[test]
fn bounded_window_on_100k_query_stream() {
    // 100k query texts cycling the demo suite: long enough that any
    // collect-the-stream implementation would be obvious, cheap enough
    // (construction-cache hits after the first six) to run in-tier.
    let net = aalwines::examples::paper_network();
    let session = SessionBuilder::new().threads(4).open(net);
    const N: usize = 100_000;
    const WINDOW: usize = 8;
    let lines = (0..N).map(|i| DEMO_QUERIES[i % DEMO_QUERIES.len()].to_string());

    let mut next = 0usize;
    let stream = StreamOptions::new().with_window(WINDOW);
    let summary = session.verify_stream(lines, &stream, &mut |ev| {
        if let StreamEvent::Answer { index, .. } = ev {
            assert_eq!(index, next, "answers must arrive in input order");
            next += 1;
        }
    });
    assert_eq!(next, N);
    assert_eq!(summary.batch.total, N);
    assert_eq!(summary.parse_errors, 0);
    assert!(
        summary.peak_in_flight <= WINDOW,
        "in-flight peak {} exceeded the configured window {WINDOW}",
        summary.peak_in_flight
    );
    assert!(summary.peak_in_flight >= 1);
}

/// Canonical answer rendering with timing stats stripped: outcome,
/// witness trace, sorted failed-link set, weight.
fn canonical(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Satisfied(w) => {
            let Witness {
                trace,
                failed_links,
                weight,
            } = w.as_ref();
            let mut links: Vec<usize> = failed_links.iter().map(|l| l.index()).collect();
            links.sort_unstable();
            format!("Satisfied(trace={trace:?}, failed={links:?}, weight={weight:?})")
        }
        other => format!("{other:?}"),
    }
}

#[test]
fn streamed_answers_match_batch_answers() {
    // 1k-query differential: the streaming driver must answer exactly
    // what the batch driver answers, query for query, modulo timing.
    let topo = topogen::zoo_like(&topogen::ZooConfig {
        routers: 24,
        avg_degree: 3.0,
        seed: 0xD1FF,
    });
    let dp = topogen::build_mpls_dataplane(
        topo,
        &topogen::LspConfig {
            edge_routers: 6,
            max_pairs: 30,
            protect: true,
            service_chains: 40,
            seed: 0xD1FE,
        },
    );
    let texts = topogen::queries::figure4_queries(&dp, 1000, 0xD1FD);
    let parsed: Vec<query::Query> = texts
        .iter()
        .map(|t| parse_query(t).expect("generated queries parse"))
        .collect();

    let batch_session = SessionBuilder::new().threads(2).open(dp.net.clone());
    let batch: Vec<String> = batch_session
        .verify_batch(&parsed)
        .iter()
        .map(|a| canonical(&a.outcome))
        .collect();

    let stream_session = SessionBuilder::new().threads(2).open(dp.net.clone());
    let mut streamed = Vec::with_capacity(texts.len());
    stream_session.verify_stream(
        texts.iter().cloned(),
        &StreamOptions::new().with_window(16),
        &mut |ev| {
            if let StreamEvent::Answer { answer, .. } = ev {
                streamed.push(canonical(&answer.outcome));
            }
        },
    );
    assert_eq!(streamed.len(), batch.len());
    for (i, (s, b)) in streamed.iter().zip(&batch).enumerate() {
        assert_eq!(s, b, "query {i} ({})", texts[i]);
    }
}
