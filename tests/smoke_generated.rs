use aalwines::{AtomicQuantity, Engine, Outcome, Verifier, VerifyOptions, WeightSpec};
use query::parse_query;
use topogen::queries::{figure4_queries, table1_queries};
use topogen::{build_mpls_dataplane, zoo_like, LspConfig, ZooConfig};

#[test]
fn generated_zoo_workload_verifies() {
    let topo = zoo_like(&ZooConfig {
        routers: 30,
        avg_degree: 3.0,
        seed: 13,
    });
    let dp = build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 8,
            max_pairs: 56,
            protect: true,
            service_chains: 6,
            seed: 14,
        },
    );
    eprintln!(
        "rules: {} labels: {}",
        dp.net.num_rules(),
        dp.net.labels.len()
    );
    let v = Verifier::new(&dp.net);
    let mut sat = 0;
    let mut unsat = 0;
    let mut inc = 0;
    let t0 = std::time::Instant::now();
    for qs in [table1_queries(&dp, 1), figure4_queries(&dp, 12, 2)] {
        for q in qs {
            let parsed = parse_query(&q).unwrap();
            let ans = v.verify(&parsed, &VerifyOptions::default());
            match ans.outcome {
                Outcome::Satisfied(ref w) => {
                    sat += 1;
                    assert!(
                        w.trace.is_valid(&dp.net, &w.failed_links),
                        "invalid witness for {q}"
                    );
                }
                Outcome::Unsatisfied => unsat += 1,
                Outcome::Inconclusive => inc += 1,
                Outcome::Aborted(reason) => panic!("unbudgeted run aborted on {q}: {reason}"),
                Outcome::Error(ref msg) => panic!("engine error on {q}: {msg}"),
            }
            // weighted agrees
            let wans = v.verify(
                &parsed,
                &VerifyOptions::new().with_weights(WeightSpec::single(AtomicQuantity::Failures)),
            );
            assert_eq!(
                ans.outcome.is_satisfied(),
                wans.outcome.is_satisfied(),
                "weighted disagrees on {q}"
            );
        }
    }
    eprintln!("sat={sat} unsat={unsat} inc={inc} in {:?}", t0.elapsed());
    assert!(sat > 0, "some generated queries must be satisfiable");
    assert!(sat + unsat + inc == 18);
}

/// Weighted runs must report weight vectors that match the quantities
/// evaluated on the returned trace (ground truth from netmodel).
#[test]
fn weighted_vectors_match_trace_quantities() {
    let topo = zoo_like(&ZooConfig {
        routers: 24,
        avg_degree: 3.0,
        seed: 21,
    });
    let dp = build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 6,
            max_pairs: 30,
            protect: true,
            service_chains: 5,
            seed: 22,
        },
    );
    let v = Verifier::new(&dp.net);
    let mut satisfied = 0;
    for q in figure4_queries(&dp, 21, 5) {
        let parsed = parse_query(&q).unwrap();
        let ans = v.verify(
            &parsed,
            &VerifyOptions::new().with_weights(WeightSpec::lexicographic(vec![
                aalwines::LinearExpr::atom(AtomicQuantity::Links),
                aalwines::LinearExpr::atom(AtomicQuantity::Distance),
                aalwines::LinearExpr::atom(AtomicQuantity::Failures),
                aalwines::LinearExpr::atom(AtomicQuantity::Tunnels),
            ])),
        );
        let Outcome::Satisfied(w) = ans.outcome else {
            continue;
        };
        satisfied += 1;
        let weight = w.weight.as_ref().expect("weighted run reports weights");
        assert_eq!(weight[0], w.trace.links(), "Links mismatch on {q}");
        assert_eq!(
            weight[1],
            w.trace.distance(&dp.net),
            "Distance mismatch on {q}"
        );
        assert_eq!(
            weight[2],
            w.trace
                .failures(&dp.net, &w.failed_links)
                .expect("valid trace"),
            "Failures mismatch on {q}"
        );
        assert_eq!(weight[3], w.trace.tunnels(), "Tunnels mismatch on {q}");
    }
    assert!(satisfied >= 3, "need satisfiable queries to cross-check");
}
