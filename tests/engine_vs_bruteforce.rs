//! Differential testing of the full verification engine against a
//! brute-force reference on randomly generated small networks.
//!
//! The reference enumerates failure sets `F` with `|F| ≤ k` and searches
//! the concrete forwarding semantics for a bounded-length trace whose
//! initial header, link word, and final header satisfy the compiled
//! query NFAs. The engine must be *sound* (a Satisfied answer implies
//! the reference finds a trace too — in fact we re-validate the witness
//! directly) and *conclusively correct* (Unsatisfied implies the
//! reference finds nothing); Inconclusive is allowed only when the
//! approximations genuinely disagree.

use aalwines::{Engine, Outcome, Verifier, VerifyOptions};
use detrand::DetRng;
use netmodel::{
    Header, LabelId, LabelKind, LabelTable, LinkId, Network, Op, RoutingEntry, Topology,
};
use pdaal::SymbolId;
use query::{compile, parse_query, CompiledQuery};
use std::collections::HashSet;

const MAX_TRACE_LEN: usize = 6;
const MAX_HEADER: usize = 4;

fn random_network(seed: u64) -> Network {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut topo = Topology::new();
    let n = rng.gen_range(3..6u32);
    for i in 0..n {
        topo.add_router(&format!("r{i}"), None);
    }
    let n_links = rng.gen_range(6..11u32);
    for i in 0..n_links {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        topo.add_link(
            netmodel::RouterId(a),
            &format!("o{i}"),
            netmodel::RouterId(b),
            &format!("i{i}"),
            rng.gen_range(1..5),
        );
    }

    let mut labels = LabelTable::new();
    let mpls: Vec<LabelId> = (0..2).map(|i| labels.mpls(&format!("m{i}"))).collect();
    let bos: Vec<LabelId> = (0..3).map(|i| labels.mpls_bos(&format!("s{i}"))).collect();
    let ips: Vec<LabelId> = (0..2).map(|i| labels.ip(&format!("ip{i}"))).collect();
    let all: Vec<LabelId> = mpls.iter().chain(&bos).chain(&ips).copied().collect();

    let mut net = Network::new(topo, labels.clone());
    let n_rules = rng.gen_range(6..18usize);
    for _ in 0..n_rules {
        let in_link = LinkId(rng.gen_range(0..n_links));
        let label = all[rng.gen_range(0..all.len())];
        let router = net.topology.dst(in_link);
        let outs: Vec<LinkId> = net.topology.links_from(router).to_vec();
        if outs.is_empty() {
            continue;
        }
        let out = outs[rng.gen_range(0..outs.len())];
        // Kind-appropriate operation sequences (so most rules are
        // applicable to some header).
        let pick = |v: &[LabelId], rng: &mut DetRng| v[rng.gen_range(0..v.len())];
        let ops: Vec<Op> = match labels.kind(label) {
            LabelKind::Ip => match rng.gen_range(0u32..3) {
                0 => vec![],
                1 => vec![Op::Swap(pick(&ips, &mut rng))],
                _ => vec![Op::Push(pick(&bos, &mut rng))],
            },
            LabelKind::MplsBos => match rng.gen_range(0u32..4) {
                0 => vec![Op::Swap(pick(&bos, &mut rng))],
                1 => vec![Op::Pop],
                2 => vec![Op::Push(pick(&mpls, &mut rng))],
                _ => vec![
                    Op::Swap(pick(&bos, &mut rng)),
                    Op::Push(pick(&mpls, &mut rng)),
                ],
            },
            LabelKind::Mpls => match rng.gen_range(0u32..3) {
                0 => vec![Op::Swap(pick(&mpls, &mut rng))],
                1 => vec![Op::Pop],
                _ => vec![Op::Push(pick(&mpls, &mut rng))],
            },
        };
        let prio = rng.gen_range(1..3usize);
        net.add_rule(
            in_link,
            label,
            prio,
            RoutingEntry {
                out,
                ops: ops.into(),
            },
        );
    }
    net
}

fn random_query(net: &Network, seed: u64) -> String {
    let mut rng = DetRng::seed_from_u64(seed ^ 0x51EED);
    let router = |rng: &mut DetRng| {
        let r = rng.gen_range(0..net.topology.num_routers());
        net.topology.router(netmodel::RouterId(r)).name.clone()
    };
    let heads = [".*", "ip", "smpls ip", "mpls* smpls ip", "smpls? ip"];
    let a = heads[rng.gen_range(0..heads.len())];
    let c = heads[rng.gen_range(0..heads.len())];
    let k = rng.gen_range(0..2u32);
    let b = match rng.gen_range(0u32..4) {
        0 => ".*".to_string(),
        1 => format!("[.#{}] .*", router(&mut rng)),
        2 => format!(".* [.#{}]", router(&mut rng)),
        _ => format!("[.#{}] .* [.#{}]", router(&mut rng), router(&mut rng)),
    };
    format!("<{a}> {b} <{c}> {k}")
}

/// All valid headers over the network's labels up to MAX_HEADER labels.
fn all_headers(net: &Network) -> Vec<Header> {
    let t = &net.labels;
    let mpls: Vec<LabelId> = t.of_kind(LabelKind::Mpls).collect();
    let bos: Vec<LabelId> = t.of_kind(LabelKind::MplsBos).collect();
    let ips: Vec<LabelId> = t.of_kind(LabelKind::Ip).collect();
    let mut out: Vec<Header> = ips.iter().map(|&i| Header::single(i)).collect();
    // α s ip with |α| ≤ MAX_HEADER - 2
    let mut alphas: Vec<Vec<LabelId>> = vec![vec![]];
    for _ in 0..MAX_HEADER.saturating_sub(2) {
        let mut next = Vec::new();
        for a in &alphas {
            for &m in &mpls {
                let mut v = a.clone();
                v.push(m);
                next.push(v);
            }
        }
        alphas.extend(next.clone());
        alphas.dedup();
    }
    alphas.sort();
    alphas.dedup();
    for a in alphas {
        for &s in &bos {
            for &i in &ips {
                let mut h = a.clone();
                h.push(s);
                h.push(i);
                out.push(Header::from_top_first(h));
            }
        }
    }
    out
}

fn header_word(h: &Header) -> Vec<SymbolId> {
    h.0.iter().map(|l| SymbolId(l.0)).collect()
}

/// Reference decision procedure: does any trace satisfy the query?
fn brute_force_satisfiable(net: &Network, cq: &CompiledQuery) -> bool {
    let k = cq.max_failures as usize;
    let links: Vec<LinkId> = net.topology.links().collect();
    // All failure sets of size exactly 0..=k (small k, small networks).
    let mut failure_sets: Vec<HashSet<LinkId>> = vec![HashSet::new()];
    if k >= 1 {
        for &l in &links {
            failure_sets.push([l].into_iter().collect());
        }
    }
    if k >= 2 {
        for (i, &l1) in links.iter().enumerate() {
            for &l2 in &links[i + 1..] {
                failure_sets.push([l1, l2].into_iter().collect());
            }
        }
    }

    let headers = all_headers(net);
    for failed in &failure_sets {
        // DFS over (link, header, set-of-b-states); accept when some
        // b-state is final and the current header matches `c`.
        for &e1 in &links {
            if failed.contains(&e1) {
                continue;
            }
            for h1 in &headers {
                if !cq.initial.accepts(&header_word(h1)) {
                    continue;
                }
                // b-states after reading e1.
                let mut states: HashSet<u32> = HashSet::new();
                for &q0 in cq.path.initial_states() {
                    for edge in cq.path.edges_from(q0) {
                        if edge.links.contains(e1) {
                            states.insert(edge.to);
                        }
                    }
                }
                if states.is_empty() {
                    continue;
                }
                if search(net, cq, failed, e1, h1.clone(), &states, 1) {
                    return true;
                }
            }
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn search(
    net: &Network,
    cq: &CompiledQuery,
    failed: &HashSet<LinkId>,
    link: LinkId,
    header: Header,
    states: &HashSet<u32>,
    depth: usize,
) -> bool {
    // Accept here?
    if states.iter().any(|&s| cq.path.is_final(s)) && cq.final_.accepts(&header_word(&header)) {
        return true;
    }
    if depth >= MAX_TRACE_LEN || header.len() > MAX_HEADER {
        return false;
    }
    for (next_link, next_header) in netmodel::successors(net, link, &header, failed) {
        let mut next_states: HashSet<u32> = HashSet::new();
        for &s in states {
            for edge in cq.path.edges_from(s) {
                if edge.links.contains(next_link) {
                    next_states.insert(edge.to);
                }
            }
        }
        if next_states.is_empty() {
            continue;
        }
        if search(
            net,
            cq,
            failed,
            next_link,
            next_header,
            &next_states,
            depth + 1,
        ) {
            return true;
        }
    }
    false
}

/// Validate a witness against the query NFAs and the trace semantics.
fn witness_matches_query(net: &Network, cq: &CompiledQuery, w: &aalwines::engine::Witness) -> bool {
    let first_ok = w
        .trace
        .steps
        .first()
        .is_some_and(|s| cq.initial.accepts(&header_word(&s.header)));
    let last_ok = w
        .trace
        .steps
        .last()
        .is_some_and(|s| cq.final_.accepts(&header_word(&s.header)));
    let links: Vec<LinkId> = w.trace.steps.iter().map(|s| s.link).collect();
    first_ok
        && last_ok
        && cq.path.accepts(&links)
        && w.trace.is_valid(net, &w.failed_links)
        && w.failed_links.len() as u32 <= cq.max_failures
}

#[test]
fn engine_agrees_with_bruteforce_on_random_networks() {
    let mut checked = 0usize;
    let mut sat = 0usize;
    let mut inconclusive = 0usize;
    for seed in 0..60u64 {
        let net = random_network(seed);
        for qi in 0..4u64 {
            let text = random_query(&net, seed * 101 + qi);
            let q = parse_query(&text).unwrap();
            let cq = compile(&q, &net);
            let reference = brute_force_satisfiable(&net, &cq);
            let answer = Verifier::new(&net).verify(&q, &VerifyOptions::default());
            checked += 1;
            match answer.outcome {
                Outcome::Satisfied(w) => {
                    sat += 1;
                    assert!(
                        witness_matches_query(&net, &cq, &w),
                        "invalid witness on seed {seed} query {text}"
                    );
                    // The witness may be longer than the reference bound,
                    // but its existence implies satisfiability, so the
                    // reference must agree whenever the witness is short.
                    if w.trace.steps.len() <= MAX_TRACE_LEN
                        && w.trace.steps.iter().all(|s| s.header.len() <= MAX_HEADER)
                    {
                        assert!(
                            reference,
                            "engine satisfied but reference found nothing: seed {seed}, {text}"
                        );
                    }
                }
                Outcome::Unsatisfied => {
                    assert!(
                        !reference,
                        "engine said unsatisfied but a trace exists: seed {seed}, {text}"
                    );
                }
                Outcome::Inconclusive => {
                    inconclusive += 1;
                }
                Outcome::Aborted(reason) => {
                    panic!("unbudgeted run aborted: seed {seed}, {text}: {reason}")
                }
                Outcome::Error(ref msg) => {
                    panic!("engine error: seed {seed}, {text}: {msg}")
                }
            }
        }
    }
    eprintln!("checked {checked} instances: {sat} satisfied, {inconclusive} inconclusive");
    assert!(
        sat > checked / 10,
        "workload should include satisfiable queries"
    );
    assert!(
        inconclusive <= checked / 10,
        "inconclusive rate unexpectedly high: {inconclusive}/{checked}"
    );
}

/// Shortest satisfying trace by brute force (number of links), within
/// the exploration bounds; `None` if none exists.
fn brute_force_min_links(net: &Network, cq: &CompiledQuery) -> Option<usize> {
    // Reuse the satisfiability search but track depth: iterative
    // deepening over trace length.
    for target_len in 1..=MAX_TRACE_LEN {
        let k = cq.max_failures as usize;
        let links: Vec<LinkId> = net.topology.links().collect();
        let mut failure_sets: Vec<HashSet<LinkId>> = vec![HashSet::new()];
        if k >= 1 {
            for &l in &links {
                failure_sets.push([l].into_iter().collect());
            }
        }
        let headers = all_headers(net);
        for failed in &failure_sets {
            for &e1 in &links {
                if failed.contains(&e1) {
                    continue;
                }
                for h1 in &headers {
                    if !cq.initial.accepts(&header_word(h1)) {
                        continue;
                    }
                    let mut states: HashSet<u32> = HashSet::new();
                    for &q0 in cq.path.initial_states() {
                        for edge in cq.path.edges_from(q0) {
                            if edge.links.contains(e1) {
                                states.insert(edge.to);
                            }
                        }
                    }
                    if states.is_empty() {
                        continue;
                    }
                    if search_len(net, cq, failed, e1, h1.clone(), &states, 1, target_len) {
                        return Some(target_len);
                    }
                }
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn search_len(
    net: &Network,
    cq: &CompiledQuery,
    failed: &HashSet<LinkId>,
    link: LinkId,
    header: Header,
    states: &HashSet<u32>,
    depth: usize,
    target: usize,
) -> bool {
    if depth == target {
        return states.iter().any(|&s| cq.path.is_final(s))
            && cq.final_.accepts(&header_word(&header));
    }
    if header.len() > MAX_HEADER {
        return false;
    }
    for (next_link, next_header) in netmodel::successors(net, link, &header, failed) {
        let mut next_states: HashSet<u32> = HashSet::new();
        for &s in states {
            for edge in cq.path.edges_from(s) {
                if edge.links.contains(next_link) {
                    next_states.insert(edge.to);
                }
            }
        }
        if next_states.is_empty() {
            continue;
        }
        if search_len(
            net,
            cq,
            failed,
            next_link,
            next_header,
            &next_states,
            depth + 1,
            target,
        ) {
            return true;
        }
    }
    false
}

/// The Links-weighted engine must return exactly the shortest satisfying
/// trace (within the reference's exploration bounds).
#[test]
fn weighted_links_matches_bruteforce_minimum() {
    use aalwines::{AtomicQuantity, WeightSpec};
    let mut compared = 0usize;
    for seed in 200..260u64 {
        let net = random_network(seed);
        let text = random_query(&net, seed * 13);
        let q = parse_query(&text).unwrap();
        let cq = compile(&q, &net);
        let Some(min_len) = brute_force_min_links(&net, &cq) else {
            continue;
        };
        let ans = Verifier::new(&net).verify(
            &q,
            &VerifyOptions::new().with_weights(WeightSpec::single(AtomicQuantity::Links)),
        );
        let Outcome::Satisfied(w) = ans.outcome else {
            panic!("brute force found a trace the engine missed: seed {seed}, {text}");
        };
        let engine_len = w.weight.as_ref().and_then(|v| v.first().copied()).unwrap();
        // The engine searches unbounded traces, so it can only be ≤; and
        // since the reference found a trace of min_len, equality must
        // hold whenever the engine's witness is within bounds.
        assert!(
            engine_len <= min_len as u64,
            "engine len {engine_len} worse than brute force {min_len} on seed {seed}: {text}"
        );
        if w.trace.steps.len() <= MAX_TRACE_LEN
            && w.trace.steps.iter().all(|s| s.header.len() <= MAX_HEADER)
        {
            assert_eq!(
                engine_len, min_len as u64,
                "engine found shorter in-bounds trace than exhaustive search?! seed {seed}, {text}"
            );
        }
        compared += 1;
    }
    assert!(
        compared >= 10,
        "need enough satisfiable comparisons, got {compared}"
    );
}

/// The engine must never report Unsatisfied for a query whose witness the
/// reference finds — run the complementary direction with more seeds but
/// engine-first filtering (cheap).
#[test]
fn reference_traces_are_always_found() {
    for seed in 100..140u64 {
        let net = random_network(seed);
        let text = random_query(&net, seed * 7);
        let q = parse_query(&text).unwrap();
        let cq = compile(&q, &net);
        if brute_force_satisfiable(&net, &cq) {
            let answer = Verifier::new(&net).verify(&q, &VerifyOptions::default());
            assert!(
                !matches!(answer.outcome, Outcome::Unsatisfied),
                "missed trace on seed {seed}: {text}"
            );
        }
    }
}
