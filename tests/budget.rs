//! End-to-end budget and telemetry tests: a blown budget surfaces as
//! `Outcome::Aborted` promptly (instead of an unbounded run), batches
//! degrade gracefully, and the JSON telemetry is valid JSON.

use aalwines::{
    AbortReason, CancelToken, Engine, Outcome, SessionBuilder, Verifier, VerifyOptions,
};
use query::parse_query;
use std::time::{Duration, Instant};
use topogen::lsp::{build_mpls_dataplane, Dataplane, LspConfig};
use topogen::zoo::{zoo_like, ZooConfig};

/// A Zoo-like network large enough that the waypoint query below takes
/// well over 100 ms end to end.
fn explosive_dataplane() -> Dataplane {
    let topo = zoo_like(&ZooConfig {
        routers: 150,
        avg_degree: 3.5,
        seed: 0xABCD,
    });
    build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 20,
            max_pairs: 400,
            protect: true,
            service_chains: 900,
            seed: 7,
        },
    )
}

/// An 8-waypoint `k = 3` reachability query through the edge routers.
fn explosive_query(dp: &Dataplane) -> String {
    let name = |i: usize| dp.net.topology.router(dp.edge_routers[i]).name.clone();
    let w: Vec<String> = (0..8).map(name).collect();
    format!(
        "<.*> [.#{}] .* [.#{}] .* [.#{}] .* [.#{}] .* [.#{}] .* [.#{}] .* [.#{}] .* [.#{}] <.*> 3",
        w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]
    )
}

#[test]
fn deadline_aborts_explosive_query_promptly() {
    let dp = explosive_dataplane();
    let q = parse_query(&explosive_query(&dp)).unwrap();
    let verifier = Verifier::new(&dp.net);

    let t0 = Instant::now();
    let unbounded = verifier.verify(&q, &VerifyOptions::new());
    let unbounded_elapsed = t0.elapsed();
    assert!(
        unbounded.outcome.is_satisfied(),
        "unbounded verdict changed: {:?}",
        unbounded.outcome
    );

    let deadline = Duration::from_millis(100);
    let t1 = Instant::now();
    let bounded = verifier.verify(&q, &VerifyOptions::new().with_timeout(deadline));
    let elapsed = t1.elapsed();
    assert!(
        matches!(
            bounded.outcome,
            Outcome::Aborted(AbortReason::DeadlineExceeded)
        ),
        "expected a deadline abort, got {:?} (unbounded took {unbounded_elapsed:?})",
        bounded.outcome
    );
    assert_eq!(bounded.stats.aborted, Some(AbortReason::DeadlineExceeded));
    // Abort latency: within 2x the deadline, except that an abort can
    // be delayed by the one un-instrumented step (a reduction pass —
    // construction polls its budget per worklist state) straddling it —
    // relevant only in slow unoptimized builds, hence the alternative
    // bound of half the unbounded runtime.
    let bound = (2 * deadline).max(unbounded_elapsed / 2);
    assert!(
        elapsed < bound,
        "abort took {elapsed:?}, over the {bound:?} latency bound"
    );
}

#[test]
fn transition_budget_aborts_instead_of_hanging() {
    let dp = explosive_dataplane();
    let q = parse_query(&explosive_query(&dp)).unwrap();
    let ans =
        Verifier::new(&dp.net).verify(&q, &VerifyOptions::new().with_transition_budget(2_000));
    assert!(
        matches!(
            ans.outcome,
            Outcome::Aborted(AbortReason::TransitionBudgetExceeded)
        ),
        "expected a transition-budget abort, got {:?}",
        ans.outcome
    );
    assert!(
        ans.stats.sat_transitions > 2_000,
        "abort must record the transition count that blew the cap"
    );
}

#[test]
fn cancelled_batch_preserves_order_and_answers_every_slot() {
    let dp = explosive_dataplane();
    let name = |i: usize| dp.net.topology.router(dp.edge_routers[i]).name.clone();
    let texts: Vec<String> = (1..6)
        .map(|i| format!("<ip> [.#{}] .* [.#{}] <ip> 1", name(0), name(i)))
        .collect();
    let queries: Vec<_> = texts.iter().map(|t| parse_query(t).unwrap()).collect();

    let token = CancelToken::new();
    token.cancel();
    let session = SessionBuilder::new().threads(4).cancel(token).open(dp.net);
    let answers = session.verify_batch(&queries);
    assert_eq!(answers.len(), queries.len(), "one answer per query slot");
    for (i, a) in answers.iter().enumerate() {
        assert!(
            matches!(a.outcome, Outcome::Aborted(AbortReason::Cancelled)),
            "slot {i}: {:?}",
            a.outcome
        );
    }
}

#[test]
fn stats_json_round_trips_through_the_parser() {
    let net = aalwines::examples::paper_network();
    let q = parse_query("<ip> [.#v0] .* [v3#.] <ip> 0").unwrap();
    let answers = aalwines::Session::open(net).verify_batch(&[q]);

    let stats_json = answers[0].stats.to_json();
    let parsed = formats::json::parse(&stats_json).expect("EngineStats::to_json is valid JSON");
    for key in [
        "rulesOver",
        "rulesRemoved",
        "satTransitions",
        "worklistPops",
        "underRuns",
        "totalMillis",
    ] {
        assert!(parsed.get(key).is_some(), "missing stats key {key}");
    }
    assert!(
        parsed.get("aborted").is_some(),
        "aborted key present (null)"
    );

    let summary = aalwines::BatchSummary::summarize(&answers);
    let summary_json = summary.to_json();
    let parsed = formats::json::parse(&summary_json).expect("BatchSummary::to_json is valid JSON");
    assert_eq!(
        parsed.get("total").and_then(formats::json::Value::as_f64),
        Some(1.0)
    );
    assert_eq!(
        parsed
            .get("satisfied")
            .and_then(formats::json::Value::as_f64),
        Some(1.0)
    );
    for key in ["constructMillis", "solveMillis", "totalMillis"] {
        let pct = parsed.get(key).expect(key);
        assert!(pct.get("p50").is_some() && pct.get("p95").is_some() && pct.get("max").is_some());
    }
}
