//! # aalwines-suite — the full AalWiNes reproduction, under one roof
//!
//! This meta-crate re-exports the workspace members and hosts the glue
//! that needs several of them at once (the GUI JSON feed, the CLI).
//! See the [README](https://github.com/example/aalwines-rs) for an
//! overview and `DESIGN.md` for the system inventory.

pub use aalwines;
pub use chaos;
pub use formats;
pub use netmodel;
pub use pdaal;
pub use query;
pub use topogen;

pub mod error;
pub mod gui;

pub use error::{load_dataplane, load_dataplane_unchecked, LoadError};
