//! The `aalwines` command-line tool: load a data-plane snapshot in the
//! vendor-agnostic Appendix-A formats and verify queries against it.
//!
//! ```text
//! aalwines --topology topo.xml --routing route.xml [--locations loc.json] \
//!          [--weight "Hops, Failures + 3*Tunnels"] [--no-reduction] [--engine moped] \
//!          --query '<ip> [.#v0] .* [v3#.] <ip> 0'
//!
//! aalwines --isis mapping.txt ...      # ingest per-router IS-IS dumps instead
//! aalwines --isis mapping.txt --write-topology topo.xml --write-routing route.xml
//!                                      # convert to the vendor-agnostic format
//! aalwines --demo                      # the paper's running example
//! aalwines ... --stdin                 # one query per line from stdin
//! ```
//!
//! Exit code 0: all queries conclusive; 2: at least one inconclusive;
//! 1: usage or input error.

use aalwines::moped::verify_moped;
use aalwines::{Answer, AtomicQuantity, LinearExpr, Outcome, Verifier, VerifyOptions, WeightSpec};
use netmodel::Network;
use query::parse_query;
use std::io::BufRead;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: aalwines (--demo | --isis mapping.txt | --topology topo.xml --routing route.xml)\n\
         \x20        [--locations loc.json] (--query '<a> b <c> k' ... | --stdin)\n\
         \x20        [--weight 'expr, expr, ...'] [--engine dual|moped] [--no-reduction]\n\
         \x20        [--stats] [--json] [--write-topology out.xml] [--write-routing out.xml]"
    );
    std::process::exit(1)
}

/// Parse a weight specification like `Hops, Failures + 3*Tunnels`.
fn parse_weight_spec(text: &str) -> Result<WeightSpec, String> {
    let mut exprs = Vec::new();
    for part in text.split(',') {
        let mut expr = LinearExpr::default();
        for term in part.split('+') {
            let term = term.trim();
            if term.is_empty() {
                return Err(format!("empty term in {part:?}"));
            }
            let (coeff, name) = match term.split_once('*') {
                Some((a, q)) => (
                    a.trim()
                        .parse::<u64>()
                        .map_err(|e| format!("bad coefficient in {term:?}: {e}"))?,
                    q.trim(),
                ),
                None => (1, term),
            };
            let quantity = match name.to_ascii_lowercase().as_str() {
                "links" => AtomicQuantity::Links,
                "hops" => AtomicQuantity::Hops,
                "distance" | "latency" => AtomicQuantity::Distance,
                "failures" => AtomicQuantity::Failures,
                "tunnels" => AtomicQuantity::Tunnels,
                other => return Err(format!("unknown quantity {other:?}")),
            };
            expr = expr.plus(coeff, quantity);
        }
        exprs.push(expr);
    }
    Ok(WeightSpec::lexicographic(exprs))
}

fn report(net: &Network, text: &str, answer: &Answer, show_stats: bool) -> bool {
    let conclusive = match &answer.outcome {
        Outcome::Satisfied(w) => {
            println!("{text}");
            println!("  SATISFIED");
            println!("  witness: {}", w.trace.display(net));
            if !w.failed_links.is_empty() {
                let mut names: Vec<String> = w
                    .failed_links
                    .iter()
                    .map(|&l| net.topology.link_name(l))
                    .collect();
                names.sort();
                println!("  failed links: {}", names.join(", "));
            }
            if let Some(weight) = &w.weight {
                println!("  weight: {weight:?}");
            }
            true
        }
        Outcome::Unsatisfied => {
            println!("{text}\n  UNSATISFIED");
            true
        }
        Outcome::Inconclusive => {
            println!("{text}\n  INCONCLUSIVE");
            false
        }
    };
    if show_stats {
        let s = &answer.stats;
        println!(
            "  stats: rules={} (-{} reduced), sat-transitions={}, under-approx={}, \
             construct={:?} reduce={:?} solve={:?}",
            s.rules_over,
            s.rules_removed,
            s.sat_transitions,
            s.used_under,
            s.t_construct,
            s.t_reduce,
            s.t_solve
        );
    }
    conclusive
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let values = |key: &str| -> Vec<String> {
        args.iter()
            .enumerate()
            .filter(|(_, a)| *a == key)
            .filter_map(|(i, _)| args.get(i + 1).cloned())
            .collect()
    };

    // ---- load the network ------------------------------------------------
    let net: Network = if has("--demo") {
        aalwines::examples::paper_network()
    } else if let Some(gml_path) = value("--gml") {
        // A Topology Zoo GML file carries no routing; synthesize the
        // paper's evaluation data plane on top (LSPs between edge
        // routers + fast-failover tunnels along shortest paths).
        let text = match std::fs::read_to_string(&gml_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {gml_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let topo = match topogen::topology_from_gml(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{gml_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let n = topo.num_routers();
        let parse_n = |key: &str, default: usize| {
            value(key)
                .map(|v| v.parse().unwrap_or(default))
                .unwrap_or(default)
        };
        let dp = topogen::build_mpls_dataplane(
            topo,
            &topogen::LspConfig {
                edge_routers: parse_n("--edge-routers", (n as usize / 4).clamp(2, 24)),
                max_pairs: parse_n("--max-pairs", 300),
                protect: !has("--no-protection"),
                service_chains: parse_n("--service-chains", 2 * n as usize),
                seed: parse_n("--seed", 1) as u64,
            },
        );
        eprintln!(
            "synthesized LSPs on {gml_path}: edge routers {:?}",
            dp.edge_routers
                .iter()
                .map(|&r| dp.net.topology.router(r).name.clone())
                .collect::<Vec<_>>()
        );
        dp.net
    } else if let Some(mapping_path) = value("--isis") {
        let mapping = match std::fs::read_to_string(&mapping_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {mapping_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = std::path::Path::new(&mapping_path)
            .parent()
            .map(|p| p.to_path_buf())
            .unwrap_or_default();
        match formats::network_from_isis(&mapping, &|p| {
            std::fs::read_to_string(base.join(p)).map_err(|e| format!("{p}: {e}"))
        }) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{mapping_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let (Some(tp), Some(rp)) = (value("--topology"), value("--routing")) else {
            usage()
        };
        let topo_text = match std::fs::read_to_string(&tp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {tp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let route_text = match std::fs::read_to_string(&rp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {rp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut topo = match formats::parse_topology(&topo_text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{tp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(lp) = value("--locations") {
            let loc_text = match std::fs::read_to_string(&lp) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {lp}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = formats::parse_locations(&loc_text, &mut topo) {
                eprintln!("{lp}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match formats::parse_routes(&route_text, topo) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{rp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let problems = net.validate();
    if !problems.is_empty() {
        eprintln!("invalid network:");
        for p in problems {
            eprintln!("  {p}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!(
        "loaded network: {} routers, {} links, {} rules, {} labels",
        net.topology.num_routers(),
        net.topology.num_links(),
        net.num_rules(),
        net.labels.len()
    );

    // ---- conversion mode (paper Appendix A.1) -------------------------
    let mut converted = false;
    if let Some(path) = value("--write-topology") {
        if let Err(e) = std::fs::write(&path, formats::write_topology(&net.topology)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        converted = true;
    }
    if let Some(path) = value("--write-routing") {
        if let Err(e) = std::fs::write(&path, formats::write_routes(&net)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        converted = true;
    }
    if converted && values("--query").is_empty() && !has("--stdin") {
        return ExitCode::SUCCESS;
    }

    // ---- options ----------------------------------------------------------
    let weights = match value("--weight").map(|w| parse_weight_spec(&w)) {
        Some(Ok(spec)) => Some(spec),
        Some(Err(e)) => {
            eprintln!("--weight: {e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let engine = value("--engine").unwrap_or_else(|| "dual".into());
    if engine == "moped" && weights.is_some() {
        eprintln!("the moped engine cannot handle weighted queries (as in the paper)");
        return ExitCode::FAILURE;
    }
    let opts = VerifyOptions {
        weights,
        no_reduction: has("--no-reduction"),
    };
    let show_stats = has("--stats");
    let json_output = has("--json");

    // ---- queries ------------------------------------------------------------
    let mut queries = values("--query");
    if has("--stdin") {
        for line in std::io::stdin().lock().lines() {
            let line = line.expect("read stdin");
            let line = line.trim();
            if !line.is_empty() && !line.starts_with('#') {
                queries.push(line.to_string());
            }
        }
    }
    if queries.is_empty() {
        usage()
    }

    let verifier = Verifier::new(&net);
    let mut all_conclusive = true;
    for text in &queries {
        let parsed = match parse_query(text) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("{text}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let answer = match engine.as_str() {
            "dual" => verifier.verify(&parsed, &opts),
            "moped" => verify_moped(&net, &parsed),
            other => {
                eprintln!("unknown engine {other:?} (use dual or moped)");
                return ExitCode::FAILURE;
            }
        };
        if json_output {
            println!(
                "{}",
                aalwines_suite::gui::answer_to_json(&net, text, &answer).to_json()
            );
            all_conclusive &= !matches!(answer.outcome, Outcome::Inconclusive);
        } else {
            all_conclusive &= report(&net, text, &answer, show_stats);
        }
    }
    if all_conclusive {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
