//! The `aalwines` command-line tool: load a data-plane snapshot in the
//! vendor-agnostic Appendix-A formats and verify queries against it.
//!
//! ```text
//! aalwines --topology topo.xml --routing route.xml [--locations loc.json] \
//!          [--weight "Hops, Failures + 3*Tunnels"] [--no-reduction] [--engine moped] \
//!          --query '<ip> [.#v0] .* [v3#.] <ip> 0'
//!
//! aalwines --isis mapping.txt ...      # ingest per-router IS-IS dumps instead
//! aalwines --isis mapping.txt --write-topology topo.xml --write-routing route.xml
//!                                      # convert to the vendor-agnostic format
//! aalwines --demo                      # the paper's running example
//! aalwines ... --stdin                 # one query per line from stdin
//! aalwines ... --lint                  # static analysis instead of verification
//! ```
//!
//! Exit code 0: all queries conclusive; 2: at least one inconclusive;
//! 1: usage or input error. With `--lint`/`--lint-json`: 0 clean,
//! 2 warnings only, 1 at least one error.

use aalwines::telemetry::envelope;
use aalwines::{
    Answer, Backend, BatchSummary, Outcome, SessionBuilder, StreamEvent, StreamOptions,
    VerifyOptions, WeightSpec,
};
use netmodel::Network;
use query::parse_query;
use std::io::{BufRead, BufReader};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: aalwines (--demo | --isis mapping.txt | --topology topo.xml --routing route.xml)\n\
         \x20        [--locations loc.json] (--query '<a> b <c> k' ... | --stdin)\n\
         \x20        [--weight 'expr, expr, ...'] [--engine dual|moped] [--no-reduction]\n\
         \x20        [--deadline-ms N] [--batch-deadline-ms N] [--max-transitions N]\n\
         \x20        [--threads N] [--sat-threads N] [--no-cache] [--cache-size N]\n\
         \x20        [--window N] [--progress-ms N]\n\
         \x20        [--stats] [--json] [--repair]\n\
         \x20        [--write-topology out.xml] [--write-routing out.xml]\n\
         \x20        [--chaos-seed N] [--chaos-mutants M]\n\
         \x20        [--lint | --lint-json]\n\
         \n\
         --demo without --query/--stdin runs the paper's six benchmark queries."
    );
    std::process::exit(1)
}

/// The paper's six running-example queries, used as the default workload
/// of `--demo`.
const DEMO_QUERIES: [&str; 6] = [
    "<ip> [.#v0] .* [v3#.] <ip> 0",
    "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
    "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
    "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
    "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
    "<ip> [.#v3] .* [v0#.] <ip> 2",
];

fn report(net: &Network, text: &str, answer: &Answer, show_stats: bool) -> bool {
    let conclusive = match &answer.outcome {
        Outcome::Satisfied(w) => {
            println!("{text}");
            println!("  SATISFIED");
            println!("  witness: {}", w.trace.display(net));
            if !w.failed_links.is_empty() {
                let mut names: Vec<String> = w
                    .failed_links
                    .iter()
                    .map(|&l| net.topology.link_name(l))
                    .collect();
                names.sort();
                println!("  failed links: {}", names.join(", "));
            }
            if let Some(weight) = &w.weight {
                println!("  weight: {weight:?}");
            }
            true
        }
        Outcome::Unsatisfied => {
            println!("{text}\n  UNSATISFIED");
            true
        }
        Outcome::Inconclusive => {
            println!("{text}\n  INCONCLUSIVE");
            false
        }
        Outcome::Aborted(reason) => {
            println!("{text}\n  ABORTED ({reason})");
            false
        }
        Outcome::Error(msg) => {
            println!("{text}\n  ERROR ({msg})");
            false
        }
    };
    if show_stats {
        println!("  stats: {}", answer.stats.to_json());
    }
    conclusive
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let values = |key: &str| -> Vec<String> {
        args.iter()
            .enumerate()
            .filter(|(_, a)| *a == key)
            .filter_map(|(i, _)| args.get(i + 1).cloned())
            .collect()
    };

    let lint_mode = has("--lint") || has("--lint-json");

    // `--no-cache` and `--cache-size` used to silently resolve in
    // argument order; a conflicting combination is a usage error now.
    if has("--no-cache") && has("--cache-size") {
        eprintln!("--no-cache conflicts with --cache-size (use --cache-size 0 to disable)");
        return ExitCode::FAILURE;
    }

    // ---- load the network ------------------------------------------------
    let net: Network = if has("--demo") {
        aalwines::examples::paper_network()
    } else if let Some(gml_path) = value("--gml") {
        // A Topology Zoo GML file carries no routing; synthesize the
        // paper's evaluation data plane on top (LSPs between edge
        // routers + fast-failover tunnels along shortest paths).
        let text = match std::fs::read_to_string(&gml_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {gml_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let topo = match topogen::topology_from_gml(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{gml_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let n = topo.num_routers();
        let parse_n = |key: &str, default: usize| {
            value(key)
                .map(|v| v.parse().unwrap_or(default))
                .unwrap_or(default)
        };
        let dp = topogen::build_mpls_dataplane(
            topo,
            &topogen::LspConfig {
                edge_routers: parse_n("--edge-routers", (n as usize / 4).clamp(2, 24)),
                max_pairs: parse_n("--max-pairs", 300),
                protect: !has("--no-protection"),
                service_chains: parse_n("--service-chains", 2 * n as usize),
                seed: parse_n("--seed", 1) as u64,
            },
        );
        eprintln!(
            "synthesized LSPs on {gml_path}: edge routers {:?}",
            dp.edge_routers
                .iter()
                .map(|&r| dp.net.topology.router(r).name.clone())
                .collect::<Vec<_>>()
        );
        dp.net
    } else if let Some(mapping_path) = value("--isis") {
        let mapping = match std::fs::read_to_string(&mapping_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {mapping_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = std::path::Path::new(&mapping_path)
            .parent()
            .map(|p| p.to_path_buf())
            .unwrap_or_default();
        match formats::network_from_isis(&mapping, &|p| {
            std::fs::read_to_string(base.join(p)).map_err(|e| format!("{p}: {e}"))
        }) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{mapping_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let (Some(tp), Some(rp)) = (value("--topology"), value("--routing")) else {
            usage()
        };
        let topo_text = match std::fs::read_to_string(&tp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {tp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let route_text = match std::fs::read_to_string(&rp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {rp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let loc_text = match value("--locations") {
            None => None,
            Some(lp) => match std::fs::read_to_string(&lp) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("cannot read {lp}: {e}");
                    return ExitCode::FAILURE;
                }
            },
        };
        // The unified load path: every parse failure is a typed
        // LoadError with a byte offset where one exists. Lint mode
        // skips the validation gate — a semantically broken network is
        // exactly what the linter is for.
        let loaded = if lint_mode && !has("--repair") {
            aalwines_suite::load_dataplane_unchecked(&topo_text, &route_text, loc_text.as_deref())
        } else {
            aalwines_suite::load_dataplane(
                &topo_text,
                &route_text,
                loc_text.as_deref(),
                has("--repair"),
            )
        };
        match loaded {
            Ok(n) => n,
            Err(e) => {
                eprintln!("cannot load {tp} + {rp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut net = net;
    let problems = net.validate();
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("  {p}");
        }
        let errors = problems
            .iter()
            .filter(|p| p.severity == netmodel::Severity::Error)
            .count();
        if has("--repair") {
            let report = net.repair();
            eprintln!(
                "repaired network: dropped {} rule keys, {} entries; removed {} empty groups",
                report.dropped_keys, report.dropped_entries, report.removed_groups
            );
        } else if errors > 0 && !lint_mode {
            // The linter reports these same defects itself (DP001–DP004),
            // so lint mode keeps going on an invalid network.
            eprintln!("invalid network: {errors} error(s) (re-run with --repair to drop them)");
            return ExitCode::FAILURE;
        }
    }
    let net = net;
    eprintln!(
        "loaded network: {} routers, {} links, {} rules, {} labels",
        net.topology.num_routers(),
        net.topology.num_links(),
        net.num_rules(),
        net.labels.len()
    );

    // ---- lint mode --------------------------------------------------------
    // `--lint` / `--lint-json` run the static analyzer instead of the
    // verifier: dataplane lints over the loaded network plus query
    // lints for any `--query`/`--stdin` queries. Exit 0 when clean,
    // 2 with warnings only, 1 with at least one error.
    if lint_mode {
        let mut lint_queries = Vec::new();
        let mut texts = values("--query");
        if has("--stdin") {
            for line in std::io::stdin().lock().lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("cannot read stdin: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let line = line.trim();
                if !line.is_empty() && !line.starts_with('#') {
                    texts.push(line.to_string());
                }
            }
        }
        for text in &texts {
            match parse_query(text) {
                Ok(q) => lint_queries.push(q),
                Err(e) => {
                    eprintln!("{text}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let report = dplint::lint_all(&net, &lint_queries);
        if has("--lint-json") {
            println!("{}", envelope("lint-report", &report.to_json()));
        } else {
            println!("{report}");
        }
        return ExitCode::from(report.exit_code() as u8);
    }

    // ---- chaos mode -------------------------------------------------------
    // `--chaos-seed N` runs the fault-injection campaign against this
    // network instead of verifying queries: seeded mutants, validate/
    // repair, dual-vs-moped agreement, witness replay. Exit 0 iff no
    // invariant was violated.
    if let Some(seed_text) = value("--chaos-seed") {
        let Ok(seed) = seed_text.parse::<u64>() else {
            eprintln!("--chaos-seed: expected an integer, got {seed_text:?}");
            return ExitCode::FAILURE;
        };
        let mutants = match value("--chaos-mutants") {
            None => 100,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--chaos-mutants: expected a count, got {v:?}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let mut chaos_queries = Vec::new();
        for text in values("--query") {
            match parse_query(&text) {
                Ok(q) => chaos_queries.push(q),
                Err(e) => {
                    eprintln!("{text}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if chaos_queries.is_empty() {
            chaos_queries = chaos::paper_queries();
        }
        let report = chaos::run_chaos(
            &net,
            &chaos_queries,
            &chaos::ChaosOptions::new(seed, mutants),
        );
        if has("--json") {
            println!("{}", envelope("chaos-report", &report.to_json()));
        } else {
            println!(
                "chaos: {} mutants ({} clean, {} repaired, {} rejected), \
                 {} verifications, {} decided pairs, {} witnesses replayed",
                report.mutants,
                report.clean,
                report.repaired,
                report.rejected,
                report.verifications,
                report.decided_pairs,
                report.witnesses_replayed
            );
            for v in &report.violations {
                println!("  VIOLATION: {v}");
            }
        }
        return if report.ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // ---- conversion mode (paper Appendix A.1) -------------------------
    let mut converted = false;
    if let Some(path) = value("--write-topology") {
        if let Err(e) = std::fs::write(&path, formats::write_topology(&net.topology)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        converted = true;
    }
    if let Some(path) = value("--write-routing") {
        if let Err(e) = std::fs::write(&path, formats::write_routes(&net)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
        converted = true;
    }
    if converted && values("--query").is_empty() && !has("--stdin") {
        return ExitCode::SUCCESS;
    }

    // ---- options ----------------------------------------------------------
    let weights = match value("--weight").map(|w| WeightSpec::parse(&w)) {
        Some(Ok(spec)) => Some(spec),
        Some(Err(e)) => {
            eprintln!("--weight: {e}");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let engine_name = value("--engine").unwrap_or_else(|| "dual".into());
    if engine_name == "moped" && weights.is_some() {
        eprintln!("the moped engine cannot handle weighted queries (as in the paper)");
        return ExitCode::FAILURE;
    }
    let parse_millis = |key: &str| -> Result<Option<Duration>, ExitCode> {
        match value(key) {
            None => Ok(None),
            Some(v) => match v.parse::<u64>() {
                Ok(ms) => Ok(Some(Duration::from_millis(ms))),
                Err(_) => {
                    eprintln!("{key}: expected milliseconds, got {v:?}");
                    Err(ExitCode::FAILURE)
                }
            },
        }
    };
    let mut opts = VerifyOptions::new();
    if let Some(w) = weights {
        opts = opts.with_weights(w);
    }
    if has("--no-reduction") {
        opts = opts.without_reduction();
    }
    match parse_millis("--deadline-ms") {
        Ok(Some(t)) => opts = opts.with_timeout(t),
        Ok(None) => {}
        Err(code) => return code,
    }
    if let Some(v) = value("--max-transitions") {
        match v.parse::<usize>() {
            Ok(max) => opts = opts.with_transition_budget(max),
            Err(_) => {
                eprintln!("--max-transitions: expected a count, got {v:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    // --threads parallelizes *across* queries (one batch worker per
    // whole query); --sat-threads parallelizes *inside* each single
    // verification and yields byte-identical answers at any setting.
    if let Some(v) = value("--sat-threads") {
        match v.parse::<usize>() {
            Ok(n) => opts = opts.with_saturation_threads(n),
            Err(_) => {
                eprintln!("--sat-threads: expected a count, got {v:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut builder = SessionBuilder::new();
    if let Some(v) = value("--threads") {
        match v.parse::<usize>() {
            Ok(n) => builder = builder.threads(n),
            Err(_) => {
                eprintln!("--threads: expected a count, got {v:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    match parse_millis("--batch-deadline-ms") {
        Ok(Some(t)) => builder = builder.batch_timeout(t),
        Ok(None) => {}
        Err(code) => return code,
    }
    let show_stats = has("--stats");
    let json_output = has("--json");

    // Construction cache (dual engine only; Moped has no cache).
    if has("--no-cache") {
        builder = builder.cache_size(0);
    }
    if let Some(v) = value("--cache-size") {
        match v.parse::<usize>() {
            Ok(n) => builder = builder.cache_size(n),
            Err(_) => {
                eprintln!("--cache-size: expected a count (0 disables the cache), got {v:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    match engine_name.as_str() {
        "dual" => {}
        "moped" => builder = builder.backend(Backend::Moped),
        other => {
            eprintln!("unknown engine {other:?} (use dual or moped)");
            return ExitCode::FAILURE;
        }
    }

    // ---- streaming mode (--stdin) -----------------------------------------
    // Queries stream straight off stdin through the bounded-window
    // driver: nothing buffers the whole input or the whole answer set,
    // a malformed line yields a per-query error answer instead of
    // aborting the run, and answers print in input order as they
    // complete. `--window` bounds in-flight queries; `--progress-ms`
    // emits live telemetry envelopes on stderr.
    if has("--stdin") {
        let mut stream_opts = StreamOptions::new();
        if let Some(v) = value("--window") {
            match v.parse::<usize>() {
                Ok(n) => stream_opts = stream_opts.with_window(n),
                Err(_) => {
                    eprintln!("--window: expected a count, got {v:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match parse_millis("--progress-ms") {
            Ok(Some(t)) => stream_opts = stream_opts.with_progress_interval(t),
            Ok(None) => {}
            Err(code) => return code,
        }

        // One resident session owns the network, precomputation, and
        // cache; every streamed query reuses them.
        let session = builder.verify_options(opts).open(net);
        let net = session.network();

        // A read error mid-stream ends the input; remember it so the
        // run still exits 1 (the feeder thread owns the iterator, hence
        // the shared slot).
        let io_error: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let io_slot = Arc::clone(&io_error);
        let lines = values("--query").into_iter().chain(
            BufReader::new(std::io::stdin())
                .lines()
                .map_while(move |r| match r {
                    Ok(l) => Some(l),
                    Err(e) => {
                        *io_slot.lock().unwrap() = Some(e.to_string());
                        None
                    }
                })
                .map(|l| l.trim().to_string())
                .filter(|l| !l.is_empty() && !l.starts_with('#')),
        );

        let mut all_conclusive = true;
        let summary = session.verify_stream(lines, &stream_opts, &mut |ev| match ev {
            StreamEvent::Answer { text, answer, .. } => {
                if json_output {
                    println!(
                        "{}",
                        envelope(
                            "answer",
                            &aalwines_suite::gui::answer_to_json(net, text, answer).to_json()
                        )
                    );
                    all_conclusive &= answer.outcome.is_conclusive();
                } else {
                    all_conclusive &= report(net, text, answer, show_stats);
                }
            }
            StreamEvent::Progress(p) => {
                eprintln!("{}", envelope("stream-progress", &p.to_json()));
            }
        });
        if json_output {
            println!("{}", envelope("stream-summary", &summary.to_json()));
        } else if show_stats {
            print_summary(&summary.batch);
        }
        if let Some(e) = io_error.lock().unwrap().take() {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        if summary.parse_errors > 0 {
            eprintln!(
                "{} quer{} failed to parse",
                summary.parse_errors,
                if summary.parse_errors == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
            return ExitCode::FAILURE;
        }
        return if all_conclusive {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }

    // ---- batch mode (--query ...) -----------------------------------------
    let mut queries = values("--query");
    if queries.is_empty() {
        if has("--demo") {
            queries = DEMO_QUERIES.iter().map(|q| q.to_string()).collect();
        } else {
            usage()
        }
    }
    let mut parsed = Vec::with_capacity(queries.len());
    for text in &queries {
        match parse_query(text) {
            Ok(q) => parsed.push(q),
            Err(e) => {
                eprintln!("{text}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // One resident session owns the network, precomputation, and cache;
    // every query of the run (and any future interactive follow-ups)
    // reuses them.
    let session = builder.verify_options(opts).open(net);
    let net = session.network();

    let answers = session.verify_batch(&parsed);
    let mut all_conclusive = true;
    for (text, answer) in queries.iter().zip(&answers) {
        if json_output {
            println!(
                "{}",
                envelope(
                    "answer",
                    &aalwines_suite::gui::answer_to_json(net, text, answer).to_json()
                )
            );
            all_conclusive &= answer.outcome.is_conclusive();
        } else {
            all_conclusive &= report(net, text, answer, show_stats);
        }
    }
    let summary = BatchSummary::summarize(&answers);
    if json_output {
        println!("{}", envelope("batch-summary", &summary.to_json()));
    } else if show_stats {
        print_summary(&summary);
    }
    if all_conclusive {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn print_summary(summary: &BatchSummary) {
    println!(
        "summary: {} queries — {} satisfied, {} unsatisfied, {} inconclusive, {} aborted, \
         {} errors; solve p50 {:.3} ms, p95 {:.3} ms, max {:.3} ms",
        summary.total,
        summary.satisfied,
        summary.unsatisfied,
        summary.inconclusive,
        summary.aborted,
        summary.errors,
        summary.t_solve.p50,
        summary.t_solve.p95,
        summary.t_solve.max
    );
}
