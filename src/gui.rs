//! JSON feed for the AalWiNes web GUI.
//!
//! The original tool's browser front end renders the network on a map
//! and animates the witness trace, hop by hop, with the operations
//! applied at each router. This module produces that payload: the
//! verdict, the per-step trace (link endpoints, coordinates, header),
//! the failed links, and the weight vector.

use aalwines::{Answer, Outcome};
use formats::json::Value;
use netmodel::{LinkId, Network};
use std::collections::BTreeMap;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn link_json(net: &Network, l: LinkId) -> Value {
    let link = net.topology.link(l);
    let mut entries = vec![
        ("from", s(&net.topology.router(link.src).name)),
        ("fromInterface", s(&link.src_if)),
        ("to", s(&net.topology.router(link.dst).name)),
        ("toInterface", s(&link.dst_if)),
        ("distance", Value::Number(link.distance as f64)),
    ];
    if let Some((lat, lng)) = net.topology.router(link.src).coord {
        entries.push((
            "fromCoord",
            obj(vec![
                ("lat", Value::Number(lat)),
                ("lng", Value::Number(lng)),
            ]),
        ));
    }
    if let Some((lat, lng)) = net.topology.router(link.dst).coord {
        entries.push((
            "toCoord",
            obj(vec![
                ("lat", Value::Number(lat)),
                ("lng", Value::Number(lng)),
            ]),
        ));
    }
    obj(entries)
}

/// Render a verification answer as the GUI JSON payload.
pub fn answer_to_json(net: &Network, query: &str, answer: &Answer) -> Value {
    let mut entries: Vec<(&str, Value)> = vec![("query", s(query))];
    match &answer.outcome {
        Outcome::Satisfied(w) => {
            entries.push(("result", s("satisfied")));
            let steps: Vec<Value> = w
                .trace
                .steps
                .iter()
                .map(|step| {
                    obj(vec![
                        ("link", link_json(net, step.link)),
                        (
                            "header",
                            Value::Array(
                                step.header
                                    .0
                                    .iter()
                                    .map(|&l| s(net.labels.name(l)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            entries.push(("trace", Value::Array(steps)));
            let failed: Vec<Value> = {
                let mut v: Vec<LinkId> = w.failed_links.iter().copied().collect();
                v.sort();
                v.into_iter().map(|l| link_json(net, l)).collect()
            };
            entries.push(("failedLinks", Value::Array(failed)));
            if let Some(weight) = &w.weight {
                entries.push((
                    "weight",
                    Value::Array(weight.iter().map(|&x| Value::Number(x as f64)).collect()),
                ));
            }
        }
        Outcome::Unsatisfied => entries.push(("result", s("unsatisfied"))),
        Outcome::Inconclusive => entries.push(("result", s("inconclusive"))),
        Outcome::Aborted(reason) => {
            entries.push(("result", s("aborted")));
            entries.push(("abortReason", s(reason.as_str())));
        }
        Outcome::Error(msg) => {
            entries.push(("result", s("error")));
            entries.push(("error", s(msg)));
        }
    }
    // The per-query telemetry, embedded by parsing the hand-rolled
    // serializer's output (keeps the two JSON paths consistent). A
    // serializer bug degrades to a null stats field instead of aborting
    // the GUI feed.
    let stats = formats::json::parse(&answer.stats.to_json()).unwrap_or(Value::Null);
    entries.push(("stats", stats));
    obj(entries)
}

/// Render a query-level failure (parse or load error) as a GUI payload,
/// so the front end can show a structured message — with a byte offset
/// when one is known — instead of the process aborting.
pub fn error_to_json(query: &str, message: &str, offset: Option<usize>) -> Value {
    let mut entries = vec![
        ("query", s(query)),
        ("result", s("error")),
        ("error", s(message)),
    ];
    if let Some(pos) = offset {
        entries.push(("offset", Value::Number(pos as f64)));
    }
    obj(entries)
}

/// Render the network itself (routers with coordinates + links) for the
/// GUI's map view.
pub fn network_to_json(net: &Network) -> Value {
    let routers: Vec<Value> = net
        .topology
        .routers()
        .map(|r| {
            let router = net.topology.router(r);
            let mut entries = vec![("name", s(&router.name))];
            if let Some((lat, lng)) = router.coord {
                entries.push(("lat", Value::Number(lat)));
                entries.push(("lng", Value::Number(lng)));
            }
            obj(entries)
        })
        .collect();
    let links: Vec<Value> = net.topology.links().map(|l| link_json(net, l)).collect();
    obj(vec![
        ("routers", Value::Array(routers)),
        ("links", Value::Array(links)),
        ("rules", Value::Number(net.num_rules() as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use aalwines::{Engine, Verifier, VerifyOptions};
    use query::parse_query;

    #[test]
    fn aborted_answer_serializes_reason() {
        let net = aalwines::examples::paper_network();
        let text = "<ip> [.#v0] .* [v3#.] <ip> 0";
        let q = parse_query(text).unwrap();
        let opts = VerifyOptions::new().with_transition_budget(0);
        let ans = Verifier::new(&net).verify(&q, &opts);
        let v = answer_to_json(&net, text, &ans);
        assert_eq!(v.get("result").and_then(Value::as_str), Some("aborted"));
        assert_eq!(
            v.get("abortReason").and_then(Value::as_str),
            Some("transition-budget")
        );
        let parsed = formats::json::parse(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn satisfied_answer_serializes_with_trace() {
        let net = aalwines::examples::paper_network();
        let text = "<ip> [.#v0] .* [v3#.] <ip> 0";
        let q = parse_query(text).unwrap();
        let ans = Verifier::new(&net).verify(&q, &VerifyOptions::default());
        let v = answer_to_json(&net, text, &ans);
        assert_eq!(v.get("result").and_then(Value::as_str), Some("satisfied"));
        let Some(Value::Array(trace)) = v.get("trace") else {
            panic!("trace missing");
        };
        assert_eq!(trace.len(), 4);
        // The payload round-trips through the JSON parser.
        let parsed = formats::json::parse(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn unsatisfied_answer_has_no_trace() {
        let net = aalwines::examples::paper_network();
        let text = "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1";
        let q = parse_query(text).unwrap();
        let ans = Verifier::new(&net).verify(&q, &VerifyOptions::default());
        let v = answer_to_json(&net, text, &ans);
        assert_eq!(v.get("result").and_then(Value::as_str), Some("unsatisfied"));
        assert!(v.get("trace").is_none());
    }

    #[test]
    fn error_answer_serializes_message() {
        let net = aalwines::examples::paper_network();
        let ans = Answer::error("engine 'dual' panicked: boom");
        let v = answer_to_json(&net, "<ip> .* <ip> 0", &ans);
        assert_eq!(v.get("result").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("engine 'dual' panicked: boom")
        );
        let parsed = formats::json::parse(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_failure_renders_structured_error() {
        let bad = "<ip> [#v0 <ip> 0";
        let err = parse_query(bad).unwrap_err();
        let v = error_to_json(bad, &err.to_string(), Some(err.pos));
        assert_eq!(v.get("result").and_then(Value::as_str), Some("error"));
        assert!(v.get("offset").and_then(Value::as_f64).is_some());
        let parsed = formats::json::parse(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn network_payload_lists_everything() {
        let net = aalwines::examples::paper_network();
        let v = network_to_json(&net);
        let Some(Value::Array(routers)) = v.get("routers") else {
            panic!()
        };
        let Some(Value::Array(links)) = v.get("links") else {
            panic!()
        };
        assert_eq!(routers.len(), 7);
        assert_eq!(links.len(), 8);
        assert_eq!(v.get("rules").and_then(Value::as_f64), Some(13.0));
    }
}
