//! The unified load-time error taxonomy of the suite.
//!
//! Every way of getting a data plane into the verifier — topology XML,
//! routing XML, locations JSON, IS-IS snapshots, the query language —
//! has its own typed error carrying a byte offset where one exists.
//! [`LoadError`] folds them into a single type so the CLI and GUI can
//! render any ingestion failure uniformly (message + optional offset)
//! and never abort on malformed input.

use formats::json::JsonError;
use formats::topo_xml::FormatError;
use netmodel::ValidationIssue;
use query::ParseError;
use std::fmt;

/// Any error that can occur while loading and validating inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LoadError {
    /// A topology/routing/IS-IS document failed to parse or did not
    /// describe a valid network.
    Format(FormatError),
    /// A locations (coordinates) JSON document failed to parse.
    Json(JsonError),
    /// A query failed to parse.
    Query(ParseError),
    /// The loaded network carried `Error`-severity validation issues
    /// (and repair was not requested).
    Validation(Vec<ValidationIssue>),
}

impl LoadError {
    /// The byte offset of the failure in its source document, when the
    /// failure happened at the syntax level.
    pub fn offset(&self) -> Option<usize> {
        match self {
            LoadError::Format(e) => e.offset(),
            LoadError::Json(e) => Some(e.pos),
            LoadError::Query(e) => Some(e.pos),
            LoadError::Validation(_) => None,
        }
    }
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Format(e) => write!(f, "{e}"),
            LoadError::Json(e) => write!(f, "{e}"),
            LoadError::Query(e) => write!(f, "{e}"),
            LoadError::Validation(issues) => {
                write!(f, "invalid network ({} issues)", issues.len())?;
                for i in issues {
                    write!(f, "\n  {i}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<FormatError> for LoadError {
    fn from(e: FormatError) -> Self {
        LoadError::Format(e)
    }
}

impl From<JsonError> for LoadError {
    fn from(e: JsonError) -> Self {
        LoadError::Json(e)
    }
}

impl From<ParseError> for LoadError {
    fn from(e: ParseError) -> Self {
        LoadError::Query(e)
    }
}

/// Parse a full data-plane snapshot from in-memory documents: topology
/// XML, routing XML, and optionally the locations JSON.
///
/// With `repair` false, a network whose [`netmodel::Network::validate`]
/// reports `Error`-severity issues is rejected as
/// [`LoadError::Validation`]; with `repair` true those issues are
/// dropped via [`netmodel::Network::repair`] instead.
pub fn load_dataplane(
    topo_xml: &str,
    route_xml: &str,
    locations_json: Option<&str>,
    repair: bool,
) -> Result<netmodel::Network, LoadError> {
    let mut topo = formats::parse_topology(topo_xml)?;
    if let Some(doc) = locations_json {
        formats::parse_locations(doc, &mut topo)?;
    }
    let mut net = formats::parse_routes(route_xml, topo)?;
    let issues = net.validate();
    let has_errors = issues
        .iter()
        .any(|i| i.severity == netmodel::Severity::Error);
    if has_errors {
        if repair {
            net.repair();
        } else {
            return Err(LoadError::Validation(issues));
        }
    }
    Ok(net)
}

/// [`load_dataplane`] without the validation gate: syntax errors are
/// still rejected, but a semantically broken network is returned as-is.
/// This is what `--lint` uses — rejecting an invalid table would defeat
/// the point of linting it.
pub fn load_dataplane_unchecked(
    topo_xml: &str,
    route_xml: &str,
    locations_json: Option<&str>,
) -> Result<netmodel::Network, LoadError> {
    let mut topo = formats::parse_topology(topo_xml)?;
    if let Some(doc) = locations_json {
        formats::parse_locations(doc, &mut topo)?;
    }
    Ok(formats::parse_routes(route_xml, topo)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntax_errors_carry_offsets() {
        let e = load_dataplane("<network>", "<routes/>", None, false).unwrap_err();
        assert!(e.offset().is_some(), "XML error should have an offset: {e}");
        let e: LoadError = query::parse_query("no angle").unwrap_err().into();
        assert!(e.offset().is_some());
        let e = load_dataplane(
            "<network><routers/><links/></network>",
            "<routes><routings/></routes>",
            Some("{ bad json"),
            false,
        )
        .unwrap_err();
        assert!(matches!(e, LoadError::Json(_)));
        assert!(e.offset().is_some());
    }

    #[test]
    fn round_trip_of_paper_network_loads_clean() {
        let net = aalwines::examples::paper_network();
        let topo = formats::write_topology(&net.topology);
        let routes = formats::write_routes(&net);
        let back = load_dataplane(&topo, &routes, None, false).unwrap();
        assert_eq!(back.num_rules(), net.num_rules());
    }
}
