//! Quickstart: verify the paper's running example (Figure 1).
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Loads the five-router MPLS network of the paper, runs the queries
//! φ₀…φ₄ of Figure 1d, and prints each verdict with its witness trace —
//! ending with the Section-3 minimum-witness query that prefers the
//! tunnel-free service path σ₃ over the failover path σ₂.

use aalwines::examples::paper_network;
use aalwines::{AtomicQuantity, Engine, LinearExpr, Outcome, Verifier, VerifyOptions, WeightSpec};
use query::parse_query;

fn main() {
    let net = paper_network();
    println!(
        "Loaded the running example: {} routers, {} links, {} forwarding rules\n",
        net.topology.num_routers(),
        net.topology.num_links(),
        net.num_rules()
    );

    let queries = [
        ("φ0", "<ip> [.#v0] .* [v3#.] <ip> 0"),
        ("φ1", "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2"),
        ("φ2", "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"),
        ("φ3", "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"),
        ("φ4", "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1"),
    ];

    let verifier = Verifier::new(&net);
    for (name, text) in queries {
        let q = parse_query(text).expect("query parses");
        let answer = verifier.verify(&q, &VerifyOptions::default());
        print!("{name} = {text}\n  → ");
        match answer.outcome {
            Outcome::Satisfied(w) => {
                println!("SATISFIED");
                println!("    witness: {}", w.trace.display(&net));
                if w.failed_links.is_empty() {
                    println!("    (no failed links required)");
                } else {
                    let names: Vec<String> = w
                        .failed_links
                        .iter()
                        .map(|&l| net.topology.link_name(l))
                        .collect();
                    println!("    failed links: {}", names.join(", "));
                }
            }
            Outcome::Unsatisfied => println!("UNSATISFIED (conclusive: no such trace exists)"),
            Outcome::Inconclusive => println!("INCONCLUSIVE"),
            Outcome::Aborted(reason) => println!("ABORTED ({reason})"),
            Outcome::Error(ref msg) => println!("ERROR ({msg})"),
        }
        println!();
    }

    // Section 3: minimize (Hops, Failures + 3·Tunnels) over φ4's witnesses.
    println!("Minimum witness for φ4 under (Hops, Failures + 3·Tunnels):");
    let spec = WeightSpec::lexicographic(vec![
        LinearExpr::atom(AtomicQuantity::Hops),
        LinearExpr::atom(AtomicQuantity::Failures).plus(3, AtomicQuantity::Tunnels),
    ]);
    let q = parse_query(queries[4].1).unwrap();
    let answer = verifier.verify(&q, &VerifyOptions::new().with_weights(spec.clone()));
    match answer.outcome {
        Outcome::Satisfied(w) => {
            println!("  weight {spec} = {:?}", w.weight.as_deref().unwrap_or(&[]));
            println!("  trace: {}", w.trace.display(&net));
            println!("  (the paper: σ3 with weight (5, 0) beats σ2 with (5, 7))");
        }
        other => println!("  unexpected outcome {other:?}"),
    }
}
