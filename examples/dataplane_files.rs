//! Working with the vendor-agnostic file formats (Appendix A): export a
//! network to `topo.xml` / `route.xml` / `locations.json`, read it back,
//! and verify the reloaded data plane.
//!
//! ```text
//! cargo run --example dataplane_files [output-dir]
//! ```
//!
//! This is the round trip an operator pipeline performs: dataplane
//! snapshot → files → verification backend.

use aalwines::examples::paper_network;
use aalwines::{Engine, Outcome, Verifier, VerifyOptions};
use formats::{
    parse_locations, parse_routes, parse_topology, write_locations, write_routes, write_topology,
};
use query::parse_query;
use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(std::env::temp_dir);
    let net = paper_network();

    // ---- export --------------------------------------------------------
    let topo_xml = write_topology(&net.topology);
    let route_xml = write_routes(&net);
    let locations = write_locations(&net.topology);
    let paths = [
        (dir.join("topo.xml"), &topo_xml),
        (dir.join("route.xml"), &route_xml),
        (dir.join("locations.json"), &locations),
    ];
    for (path, content) in &paths {
        std::fs::write(path, content).expect("write snapshot file");
        println!("wrote {} ({} bytes)", path.display(), content.len());
    }

    // ---- import --------------------------------------------------------
    let topo_text = std::fs::read_to_string(dir.join("topo.xml")).unwrap();
    let route_text = std::fs::read_to_string(dir.join("route.xml")).unwrap();
    let loc_text = std::fs::read_to_string(dir.join("locations.json")).unwrap();

    let mut topo = parse_topology(&topo_text).expect("parse topo.xml");
    parse_locations(&loc_text, &mut topo).expect("parse locations.json");
    let reloaded = parse_routes(&route_text, topo).expect("parse route.xml");
    println!(
        "\nreloaded: {} routers, {} links, {} rules, {} labels",
        reloaded.topology.num_routers(),
        reloaded.topology.num_links(),
        reloaded.num_rules(),
        reloaded.labels.len()
    );
    let problems = reloaded.validate();
    assert!(
        problems.is_empty(),
        "reloaded network invalid: {problems:?}"
    );

    // ---- verify the reloaded data plane ---------------------------------
    let verifier = Verifier::new(&reloaded);
    for text in [
        "<ip> [.#v0] .* [v3#.] <ip> 0",
        "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
        "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
    ] {
        let q = parse_query(text).unwrap();
        let verdict = match verifier.verify(&q, &VerifyOptions::default()).outcome {
            Outcome::Satisfied(_) => "satisfied",
            Outcome::Unsatisfied => "unsatisfied",
            Outcome::Inconclusive => "inconclusive",
            Outcome::Aborted(_) => "aborted",
            Outcome::Error(_) => "error",
        };
        println!("  {text}  →  {verdict}");
    }
    println!("\nround trip complete — the reloaded snapshot verifies identically.");
}
