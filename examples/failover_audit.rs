//! Failover audit: the what-if analysis an operator runs before a
//! maintenance window.
//!
//! ```text
//! cargo run --release --example failover_audit
//! ```
//!
//! Generates an ISP-like network with link-protection tunnels and then,
//! for every customer-facing (edge, edge) pair, asks the three questions
//! that matter before taking links down:
//!
//! 1. *connectivity*: does traffic still reach its destination with up
//!    to `k` failed links?
//! 2. *transparency*: can any internal tunnel label leak out of the
//!    network while rerouting?
//! 3. *stretch*: how many extra hops does the worst-case reroute cost
//!    (minimum-hop witness at k=0 vs k=1)?

use aalwines::{AtomicQuantity, Engine, Outcome, Verifier, VerifyOptions, WeightSpec};
use query::parse_query;
use topogen::{build_mpls_dataplane, zoo_like, LspConfig, ZooConfig};

fn main() {
    let topo = zoo_like(&ZooConfig {
        routers: 36,
        avg_degree: 3.0,
        seed: 0xA0D1,
    });
    let dp = build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 6,
            max_pairs: 30,
            protect: true,
            service_chains: 8,
            seed: 0xA0D2,
        },
    );
    let net = &dp.net;
    println!(
        "Audit network: {} routers / {} links / {} rules / {} labels\n",
        net.topology.num_routers(),
        net.topology.num_links(),
        net.num_rules(),
        net.labels.len()
    );

    let verifier = Verifier::new(net);
    let name = |r: netmodel::RouterId| net.topology.router(r).name.clone();

    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>14} {:>16}",
        "ingress", "egress", "reach k=0", "reach k=1", "label leak?", "hops k=0 → k=1"
    );
    let mut audited = 0;
    for &s in &dp.edge_routers {
        for &t in &dp.edge_routers {
            if s == t || audited >= 10 {
                continue;
            }
            audited += 1;
            let (a, b) = (name(s), name(t));
            let reach = |k: u32| -> &'static str {
                let q = parse_query(&format!("<ip> [.#{a}] .* [.#{b}] <ip> {k}")).unwrap();
                match verifier.verify(&q, &VerifyOptions::default()).outcome {
                    Outcome::Satisfied(_) => "yes",
                    Outcome::Unsatisfied => "no",
                    _ => "unknown",
                }
            };
            // Transparency: a trace that leaves the network (crosses the
            // egress stub link) with an extra MPLS label above the
            // bottom-of-stack label would leak internal tunnel labels
            // (the paper's φ3). Mid-network links carry tunnel labels
            // legitimately, so the query pins the last link to the stub.
            let leak_q = parse_query(&format!(
                "<.* smpls? ip> [.#{a}] .* [{b}#X_{b}] <mpls+ smpls ip> 1"
            ))
            .unwrap();
            let leak = match verifier.verify(&leak_q, &VerifyOptions::default()).outcome {
                Outcome::Satisfied(_) => "LEAK",
                Outcome::Unsatisfied => "clean",
                _ => "unknown",
            };
            // Stretch: minimum-hop witness without and with one failure.
            let hops = |k: u32| -> Option<u64> {
                let q = parse_query(&format!("<ip> [.#{a}] .* [.#{b}] <ip> {k}")).unwrap();
                let ans = verifier.verify(
                    &q,
                    &VerifyOptions::new().with_weights(WeightSpec::single(AtomicQuantity::Hops)),
                );
                match ans.outcome {
                    Outcome::Satisfied(w) => w.weight.and_then(|v| v.first().copied()),
                    _ => None,
                }
            };
            let stretch = match (hops(0), hops(1)) {
                (Some(h0), Some(h1)) => format!("{h0} → {h1}"),
                (Some(h0), None) => format!("{h0} → ?"),
                _ => "-".into(),
            };
            println!(
                "{:<8} {:<8} {:>12} {:>12} {:>14} {:>16}",
                a,
                b,
                reach(0),
                reach(1),
                leak,
                stretch
            );
        }
    }
    println!("\n(hop counts are the *minimum-hop witness*, i.e. best-case routing; a");
    println!(" larger k=1 number shows the reroute taken when primaries fail)");
}
