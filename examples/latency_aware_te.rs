//! Latency-aware traffic engineering: quantitative what-if analysis with
//! the `Distance` quantity (the paper's geographic-distance/latency use
//! case).
//!
//! ```text
//! cargo run --release --example latency_aware_te
//! ```
//!
//! On a geographically embedded backbone, compares for each service the
//! *shortest-distance* witness against the *fewest-hops* witness, and
//! shows how a single link failure changes the achievable latency — the
//! kind of answer the AalWiNes GUI renders when the operator drags the
//! minimization vector to `(Distance)`.

use aalwines::{AtomicQuantity, Engine, LinearExpr, Outcome, Verifier, VerifyOptions, WeightSpec};
use query::parse_query;
use topogen::{build_mpls_dataplane, zoo_like, LspConfig, ZooConfig};

fn main() {
    let topo = zoo_like(&ZooConfig {
        routers: 48,
        avg_degree: 3.2,
        seed: 0x7E7E,
    });
    let dp = build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 8,
            max_pairs: 56,
            protect: true,
            service_chains: 12,
            seed: 0x7E7F,
        },
    );
    let net = &dp.net;
    println!(
        "Backbone: {} routers / {} links / {} rules (link distances in km)\n",
        net.topology.num_routers(),
        net.topology.num_links(),
        net.num_rules()
    );

    let verifier = Verifier::new(net);
    let min_by = |q: &str, spec: WeightSpec| -> Option<Vec<u64>> {
        let parsed = parse_query(q).ok()?;
        match verifier
            .verify(&parsed, &VerifyOptions::new().with_weights(spec))
            .outcome
        {
            Outcome::Satisfied(w) => w.weight,
            _ => None,
        }
    };

    println!(
        "{:<10} {:<10} {:>14} {:>14} {:>16} {:>18}",
        "ingress", "egress", "min km (k=0)", "min km (k=1)", "min hops (k=0)", "km at min hops"
    );
    let name = |r: netmodel::RouterId| net.topology.router(r).name.clone();
    let mut shown = 0;
    for &s in &dp.edge_routers {
        for &t in &dp.edge_routers {
            if s == t || shown >= 8 {
                continue;
            }
            let (a, b) = (name(s), name(t));
            let q0 = format!("<ip> [.#{a}] .* [.#{b}] <ip> 0");
            let q1 = format!("<ip> [.#{a}] .* [.#{b}] <ip> 1");
            let km0 = min_by(&q0, WeightSpec::single(AtomicQuantity::Distance));
            if km0.is_none() {
                continue; // not routed
            }
            shown += 1;
            let km1 = min_by(&q1, WeightSpec::single(AtomicQuantity::Distance));
            let hops0 = min_by(&q0, WeightSpec::single(AtomicQuantity::Hops));
            // Lexicographic: first minimize hops, then km — the km
            // component reveals the latency price of hop-optimal routing.
            let hop_then_km = min_by(
                &q0,
                WeightSpec::lexicographic(vec![
                    LinearExpr::atom(AtomicQuantity::Hops),
                    LinearExpr::atom(AtomicQuantity::Distance),
                ]),
            );
            let cell = |v: &Option<Vec<u64>>, i: usize| {
                v.as_ref()
                    .and_then(|v| v.get(i))
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "{:<10} {:<10} {:>14} {:>14} {:>16} {:>18}",
                a,
                b,
                cell(&km0, 0),
                cell(&km1, 0),
                cell(&hops0, 0),
                cell(&hop_then_km, 1),
            );
        }
    }
    println!("\nReading: when 'km at min hops' exceeds 'min km', the hop-optimal and");
    println!("latency-optimal paths differ — a candidate for traffic-engineering review.");
}
