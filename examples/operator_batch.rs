//! Operator-scale batch verification: run a policy suite of hundreds of
//! queries against a snapshot, in parallel, and print a compliance
//! report — the workflow behind the paper's "6,000 queries, 8
//! inconclusive" case study.
//!
//! ```text
//! cargo run --release --example operator_batch [-- <threads>]
//! ```

use aalwines::{Outcome, SessionBuilder};
use query::parse_query;
use std::time::Instant;
use topogen::queries::figure4_queries;
use topogen::{build_mpls_dataplane, zoo_like, LspConfig, ZooConfig};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let topo = zoo_like(&ZooConfig {
        routers: 64,
        avg_degree: 3.1,
        seed: 0xBA7C4,
    });
    let dp = build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 12,
            max_pairs: 132,
            protect: true,
            service_chains: 200,
            seed: 0xBA7C5,
        },
    );
    println!(
        "snapshot: {} routers / {} links / {} rules / {} labels",
        dp.net.topology.num_routers(),
        dp.net.topology.num_links(),
        dp.net.num_rules(),
        dp.net.labels.len()
    );

    let texts = figure4_queries(&dp, 280, 0xC0FFEE);
    let queries: Vec<query::Query> = texts
        .iter()
        .map(|t| parse_query(t).expect("generated queries parse"))
        .collect();
    println!(
        "policy suite: {} queries, {} worker threads\n",
        queries.len(),
        threads
    );

    let t0 = Instant::now();
    let session = SessionBuilder::new().threads(threads).open(dp.net.clone());
    let answers = session.verify_batch(&queries);
    let elapsed = t0.elapsed();

    let mut sat = 0;
    let mut unsat = 0;
    let mut inconclusive = Vec::new();
    for (text, answer) in texts.iter().zip(&answers) {
        match answer.outcome {
            Outcome::Satisfied(_) => sat += 1,
            Outcome::Unsatisfied => unsat += 1,
            Outcome::Inconclusive => inconclusive.push(text.clone()),
            Outcome::Aborted(reason) => panic!("unbudgeted batch aborted: {reason}"),
            Outcome::Error(ref msg) => panic!("engine error: {msg}"),
        }
    }
    println!(
        "verified {} queries in {:.2}s ({:.1} queries/s)",
        answers.len(),
        elapsed.as_secs_f64(),
        answers.len() as f64 / elapsed.as_secs_f64()
    );
    println!("  satisfied:    {sat}");
    println!("  unsatisfied:  {unsat}");
    println!(
        "  inconclusive: {} ({:.2} %)   [paper: 8/6000 = 0.13 %]",
        inconclusive.len(),
        100.0 * inconclusive.len() as f64 / answers.len() as f64
    );
    for q in inconclusive.iter().take(5) {
        println!("    needs deeper analysis: {q}");
    }

    // Sequential re-run of a sample to show the speedup honestly: both
    // runs get a fresh session (cold cache) so only the thread count
    // differs.
    let sample = &queries[..queries.len().min(40)];
    let t1 = Instant::now();
    let _ = SessionBuilder::new()
        .open(dp.net.clone())
        .verify_batch(sample);
    let seq = t1.elapsed();
    let t2 = Instant::now();
    let _ = SessionBuilder::new()
        .threads(threads)
        .open(dp.net.clone())
        .verify_batch(sample);
    let par = t2.elapsed();
    println!(
        "\nsample of {}: sequential {:.2}s vs {} threads {:.2}s ({:.1}x)",
        sample.len(),
        seq.as_secs_f64(),
        threads,
        par.as_secs_f64(),
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9)
    );
}
