//! Operator-scale batch verification: stream a policy suite of hundreds
//! of queries against a snapshot through the bounded-window driver and
//! print a compliance report — the workflow behind the paper's "6,000
//! queries, 8 inconclusive" case study.
//!
//! Unlike a collect-then-report batch, the stream holds at most
//! `window` queries in flight however long the suite is, emits each
//! answer in input order as it completes, and ticks progress telemetry
//! while running — the same driver `aalwines --stdin` uses.
//!
//! ```text
//! cargo run --release --example operator_batch [-- <threads>]
//! ```

use aalwines::{Outcome, SessionBuilder, StreamEvent, StreamOptions};
use std::time::{Duration, Instant};
use topogen::queries::figure4_queries;
use topogen::{build_mpls_dataplane, zoo_like, LspConfig, ZooConfig};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let topo = zoo_like(&ZooConfig {
        routers: 64,
        avg_degree: 3.1,
        seed: 0xBA7C4,
    });
    let dp = build_mpls_dataplane(
        topo,
        &LspConfig {
            edge_routers: 12,
            max_pairs: 132,
            protect: true,
            service_chains: 200,
            seed: 0xBA7C5,
        },
    );
    println!(
        "snapshot: {} routers / {} links / {} rules / {} labels \
         ({:.1} MiB resident)",
        dp.net.topology.num_routers(),
        dp.net.topology.num_links(),
        dp.net.num_rules(),
        dp.net.labels.len(),
        dp.net.bytes_resident() as f64 / (1024.0 * 1024.0)
    );

    let texts = figure4_queries(&dp, 280, 0xC0FFEE);
    println!(
        "policy suite: {} queries, {} worker threads\n",
        texts.len(),
        threads
    );

    let t0 = Instant::now();
    let session = SessionBuilder::new().threads(threads).open(dp.net.clone());
    let stream = StreamOptions::new()
        .with_window(64)
        .with_progress_interval(Duration::from_millis(500));

    let mut sat = 0;
    let mut unsat = 0;
    let mut inconclusive = Vec::new();
    let summary = session.verify_stream(texts.iter().cloned(), &stream, &mut |ev| match ev {
        StreamEvent::Answer {
            text,
            answer,
            parse_error,
            ..
        } => {
            assert!(!parse_error, "generated queries parse");
            match answer.outcome {
                Outcome::Satisfied(_) => sat += 1,
                Outcome::Unsatisfied => unsat += 1,
                Outcome::Inconclusive => inconclusive.push(text.to_string()),
                Outcome::Aborted(reason) => panic!("unbudgeted batch aborted: {reason}"),
                Outcome::Error(ref msg) => panic!("engine error: {msg}"),
            }
        }
        StreamEvent::Progress(p) => {
            println!(
                "  … {} answered, {:.0} queries/s, p95 {:.2} ms, {} in flight",
                p.emitted, p.queries_per_sec, p.p95_millis, p.in_flight
            );
        }
    });
    let elapsed = t0.elapsed();

    println!(
        "verified {} queries in {:.2}s ({:.1} queries/s, peak {} of {} in flight)",
        summary.batch.total,
        elapsed.as_secs_f64(),
        summary.batch.total as f64 / elapsed.as_secs_f64(),
        summary.peak_in_flight,
        summary.window
    );
    println!("  satisfied:    {sat}");
    println!("  unsatisfied:  {unsat}");
    println!(
        "  inconclusive: {} ({:.2} %)   [paper: 8/6000 = 0.13 %]",
        inconclusive.len(),
        100.0 * inconclusive.len() as f64 / summary.batch.total as f64
    );
    for q in inconclusive.iter().take(5) {
        println!("    needs deeper analysis: {q}");
    }

    // Sequential re-run of a sample to show the speedup honestly: both
    // runs get a fresh session (cold cache) so only the thread count
    // differs.
    let sample: Vec<String> = texts.iter().take(40).cloned().collect();
    let quiet = StreamOptions::new();
    let t1 = Instant::now();
    SessionBuilder::new().open(dp.net.clone()).verify_stream(
        sample.iter().cloned(),
        &quiet,
        &mut |_| {},
    );
    let seq = t1.elapsed();
    let t2 = Instant::now();
    SessionBuilder::new()
        .threads(threads)
        .open(dp.net.clone())
        .verify_stream(sample.iter().cloned(), &quiet, &mut |_| {});
    let par = t2.elapsed();
    println!(
        "\nsample of {}: sequential {:.2}s vs {} threads {:.2}s ({:.1}x)",
        sample.len(),
        seq.as_secs_f64(),
        threads,
        par.as_secs_f64(),
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9)
    );
}
